"""Command-line interface: ``python -m repro <command>``.

Commands
--------

* ``programs``            — list bundled Domino programs
* ``compile <name|file>`` — compile and print the pipeline layout
* ``tac <name|file>``     — print the three-address code
* ``run <name>``          — simulate a program on MP5 and print stats
* ``trace-summary <file>`` — analyze a trace written with ``run --trace``
* ``monitor-report <file>`` — health timeline from ``run --alerts-out``
* ``top``                 — live dashboard over a running ``serve`` daemon
* ``export-metrics <file>`` — convert ``metrics.json`` to OpenMetrics text
* ``equiv <name>``        — run the functional-equivalence check
* ``faults <generate|validate|describe>`` — fault-schedule utilities
* ``chaos``               — fault-injection sweep (throughput + recovery)
* ``table1``              — regenerate Table 1
* ``fig7 <a|b|c|d>``      — regenerate one Figure 7 panel
* ``fig8``                — regenerate Figure 8
* ``micro <d2|d3|d4>``    — run one §4.3.2 microbenchmark
* ``reproduce``           — regenerate every artifact into a directory

Programs given by name use the bundled catalog; a path ending in ``.c``
or ``.domino`` is read from disk.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from .compiler import compile_program, preprocess
from .domino import analyze, get_program, parse, program_names
from .equivalence import check_equivalence
from .errors import ConfigError
from .faults import FAULT_KINDS, FaultSchedule, generate_schedule
from .harness import (
    ChaosSettings,
    MicrobenchSettings,
    render_chaos,
    run_chaos_sweep,
    run_all,
    RealAppSettings,
    SweepSettings,
    render_figure8,
    render_sweep,
    render_table1,
    run_d2,
    run_d3,
    run_d4,
    run_figure8,
    sweep_packet_size,
    sweep_pipelines,
    sweep_register_size,
    sweep_stateful_stages,
)
from .mp5 import ENGINES, MP5Config, run_mp5
from .obs import (
    AlertLog,
    InvariantMonitor,
    MetricsRegistry,
    PhaseProfiler,
    TraceRecorder,
    load_trace,
    render_alerts_section,
    render_epoch_section,
    render_health_timeline,
    render_trace_summary,
    summarize_trace,
    write_chrome,
    write_jsonl,
)
from .obs.health import VERDICT_VIOLATED
from .workloads import line_rate_trace


def _load_ast(spec: str):
    path = Path(spec)
    if path.suffix in (".c", ".domino") and path.exists():
        ast = parse(path.read_text(), source_name=path.stem)
        analyze(ast)
        return ast
    return get_program(spec)


def _random_headers(program):
    """Generic header generator: every field uniform over a small range.

    Good enough for smoke runs; real experiments use the workload
    generators in :mod:`repro.workloads`.
    """
    fields = list(program.packet_fields)

    def gen(rng: np.random.Generator, _i: int):
        return {f: int(rng.integers(0, 256)) for f in fields}

    return gen


def cmd_programs(_args) -> int:
    for name in program_names():
        print(name)
    return 0


def cmd_compile(args) -> int:
    compiled = compile_program(_load_ast(args.program))
    print(compiled.describe())
    return 0


def cmd_tac(args) -> int:
    tac = preprocess(_load_ast(args.program))
    print(tac)
    return 0


def _load_schedule(path, num_pipelines: int) -> Optional[FaultSchedule]:
    """Load a fault schedule and validate it against the run's pipeline
    count up front — a schedule naming pipeline >= k must die with a
    one-line diagnostic here, not a traceback from inside the
    injector."""
    try:
        schedule = FaultSchedule.load(path)
        schedule.validate(num_pipelines=num_pipelines)
    except ConfigError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return None
    return schedule


def cmd_run(args) -> int:
    """``run``: simulate a program on MP5 and print its statistics."""
    compiled = compile_program(_load_ast(args.program))
    trace = line_rate_trace(
        args.packets,
        args.pipelines,
        _random_headers(compiled),
        packet_size=args.packet_size,
        seed=args.seed,
    )
    recorder = TraceRecorder() if args.trace else None
    metrics = (
        MetricsRegistry(window=args.metrics_window) if args.metrics else None
    )
    profiler = PhaseProfiler() if args.profile else None
    schedule = None
    if args.faults:
        schedule = _load_schedule(args.faults, args.pipelines)
        if schedule is None:
            return 2
    # --alerts-out and --fail-on-violation imply the monitor.
    monitor = (
        InvariantMonitor()
        if args.monitor or args.alerts_out or args.fail_on_violation
        else None
    )
    stats, _regs = ENGINES[args.engine](
        compiled,
        trace,
        MP5Config(num_pipelines=args.pipelines, seed=args.seed),
        recorder=recorder,
        metrics=metrics,
        profiler=profiler,
        faults=schedule,
        monitor=monitor,
        native=args.native,
        epoch_jobs=args.epoch_jobs,
    )
    for key, value in stats.summary().items():
        print(f"{key:16s} {value}")
    if schedule is not None and not schedule.empty:
        print(f"\nfaults: {schedule.describe()}")
        print(f"drops by reason: {stats.drops_by_reason or '{}'}")
        print(
            f"emergency remaps: {stats.emergency_remaps} "
            f"({stats.emergency_remap_moves} indices moved)"
        )
    if recorder is not None:
        # A profiled vector run embeds its epoch/kernel breakdown in the
        # trace header so `trace-summary` can render the per-epoch view.
        trace_meta = (
            {"profiler": profiler.to_dict()} if profiler is not None else None
        )
        if args.trace_format == "jsonl":
            write_jsonl(recorder.events, args.trace, meta=trace_meta)
        else:
            write_chrome(recorder.events, args.trace, meta=trace_meta)
        print(
            f"\ntrace: {len(recorder.events)} events -> {args.trace} "
            f"({args.trace_format})"
        )
    if metrics is not None:
        metrics.save(args.metrics)
        print(f"metrics: {args.metrics}")
    if profiler is not None:
        print()
        print(profiler.report())
    if monitor is not None:
        health = monitor.health_report()
        print()
        for line in health.summary_lines():
            print(line)
        if args.alerts_out:
            alerts_meta = {"ticks": stats.ticks, "verdict": health.verdict}
            if profiler is not None and profiler.epochs:
                # Epoch boundaries are deterministic (unlike timings),
                # so monitor-report can show the vector run's structure.
                alerts_meta["epochs"] = [dict(e) for e in profiler.epochs]
            monitor.alerts.save(args.alerts_out, meta=alerts_meta)
            print(f"alerts: {len(monitor.alerts)} -> {args.alerts_out}")
        if args.fail_on_violation and health.verdict == VERDICT_VIOLATED:
            return 1
    return 0


def cmd_trace_summary(args) -> int:
    """``trace-summary``: stall rankings and flow timelines from a trace."""
    try:
        header, events = load_trace(args.trace)
    except (ValueError, OSError) as exc:
        print(f"trace-summary: cannot read {args.trace}: {exc}")
        return 2
    summary = summarize_trace(events)
    print(render_trace_summary(summary, top=args.top, max_flows=args.flows))
    if isinstance(header, dict) and "profiler" in header:
        try:
            section = render_epoch_section(header["profiler"])
        except ValueError as exc:
            print(
                f"trace-summary: malformed profiler block in "
                f"{args.trace}: {exc}"
            )
            return 2
        print()
        print(section)
    if args.alerts:
        try:
            header, log = AlertLog.load(args.alerts)
        except (ValueError, OSError) as exc:
            print(f"trace-summary: cannot read alerts {args.alerts}: {exc}")
            return 2
        print()
        print(render_alerts_section(header, list(log)))
    return 0


def cmd_monitor_report(args) -> int:
    """``monitor-report``: render a saved alert log as a per-tick health
    timeline (sparkline per severity plus the leading alerts)."""
    try:
        header, log = AlertLog.load(args.alerts)
    except (ValueError, OSError) as exc:
        print(f"monitor-report: cannot read {args.alerts}: {exc}")
        return 2
    verdict = header.get("verdict")
    if verdict is not None:
        print(f"verdict: {verdict}")
    epochs = header.get("epochs")
    if epochs:
        bounds = ", ".join(
            f"[{e.get('start')}, {e.get('end')})" for e in epochs[:8]
        )
        more = f" ... {len(epochs) - 8} more" if len(epochs) > 8 else ""
        print(f"vector epochs: {len(epochs)} resolved — {bounds}{more}")
    print(
        render_health_timeline(
            list(log),
            ticks=header.get("ticks"),
            width=args.width,
            max_alerts=args.max_alerts,
        )
    )
    return 0


def cmd_export_metrics(args) -> int:
    """``export-metrics``: render a recorded ``metrics.json`` as
    OpenMetrics text (offline twin of ``GET /metrics.prom``)."""
    from .obs.export import load_metrics_document, render_openmetrics

    try:
        doc = load_metrics_document(args.metrics)
    except (ValueError, OSError) as exc:
        print(f"export-metrics: cannot read {args.metrics}: {exc}")
        return 2
    text = render_openmetrics(doc, prefix=args.prefix)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _top_poll_loop(client, model, lock, args, stop, draw):
    """Cursor-polling fallback when SSE is unavailable: the same
    documents, fetched with ``?since=`` cursors on the draw interval."""
    from .service.client import ServiceClientError

    metrics_cursor, alerts_cursor, segment = -1, 0, None
    while not stop.is_set():
        try:
            status = client.status()
            snap = client.metrics(metrics_cursor)
            seg = snap.get("segment_index")
            if seg != segment and segment is not None and seg is not None:
                metrics_cursor = -1
                snap = client.metrics(metrics_cursor)
            segment = seg if seg is not None else segment
            window = client.alerts(alerts_cursor)
            health = client.health()
        except (ServiceClientError, OSError):
            break  # daemon gone
        with lock:
            model.apply_status(status)
            model.apply_metrics(snap)
            model.apply_alerts(window)
            model.apply_health(health)
        engine = snap.get("engine")
        if engine is not None:
            metrics_cursor = engine["cursor"]
        alerts_cursor = window["cursor"]
        draw()
        stop.wait(args.interval)


def cmd_top(args) -> int:
    """``top``: live dashboard over a serving daemon (SSE push, falling
    back to cursor polling), or a one-shot render of recorded
    ``metrics.json``/``alerts.jsonl`` artifacts with ``--metrics``."""
    import threading
    import time

    from .obs.top import TopModel, render_top_frame

    model = TopModel(width=args.width, max_alerts=args.alert_rows)
    if args.metrics:
        try:
            model.load_artifacts(args.metrics, args.alerts_log)
        except (ValueError, OSError) as exc:
            print(f"top: cannot read artifacts: {exc}")
            return 2
        sys.stdout.write(render_top_frame(model, clear=False))
        return 0

    from .service.client import ServiceClient, ServiceClientError

    client = ServiceClient(args.host, args.port)

    def seed() -> bool:
        try:
            status = client.status()
            snap = client.metrics(-1)
            window = client.alerts(0)
            health = client.health()
        except (ServiceClientError, OSError) as exc:
            print(f"top: cannot reach daemon at {client.base}: {exc}")
            return False
        model.apply_status(status)
        model.apply_metrics(snap)
        model.apply_alerts(window)
        model.apply_health(health)
        return True

    if not seed():
        return 2
    if args.once:
        sys.stdout.write(render_top_frame(model, clear=False))
        return 0

    lock = threading.Lock()
    stop = threading.Event()  # daemon ended (SSE end frame / conn lost)
    degraded = threading.Event()  # SSE unsupported: fall back to polling

    def draw():
        with lock:
            frame = render_top_frame(model, clear=True)
        sys.stdout.write(frame)
        sys.stdout.flush()

    def pump(iterator, apply):
        try:
            for payload in iterator:
                with lock:
                    apply(payload)
        except (ServiceClientError, OSError):
            degraded.set()
        else:
            stop.set()

    stream_poll = max(0.01, args.interval / 2)
    feeds = [
        (client.stream_metrics(poll=stream_poll), model.apply_metrics),
        (client.stream_alerts(poll=stream_poll), model.apply_alerts),
        (client.stream_health(poll=stream_poll), model.apply_health),
    ]
    threads = [
        threading.Thread(target=pump, args=feed, daemon=True) for feed in feeds
    ]
    try:
        for thread in threads:
            thread.start()
        while not stop.is_set():
            if degraded.is_set():
                _top_poll_loop(client, model, lock, args, stop, draw)
                break
            draw()
            time.sleep(args.interval)
        draw()  # final state (daemon shut down or poll loop ended)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
    return 0


def cmd_equiv(args) -> int:
    """``equiv``: equivalence-check a program; exit 1 on divergence."""
    compiled = compile_program(_load_ast(args.program))
    trace = line_rate_trace(
        args.packets,
        args.pipelines,
        _random_headers(compiled),
        packet_size=args.packet_size,
        seed=args.seed,
    )
    report = check_equivalence(
        compiled, trace, MP5Config(num_pipelines=args.pipelines, seed=args.seed)
    )
    print(report.summary())
    return 0 if report.equivalent else 1


def cmd_serve(args) -> int:
    """``serve``: run the long-lived switch daemon (docs/service.md)."""
    import asyncio

    from .service import SwitchService

    schedule = None
    if args.faults:
        schedule = _load_schedule(args.faults, args.pipelines)
        if schedule is None:
            return 2
    program_spec = None
    program_name = None
    if args.program:
        path = Path(args.program)
        if path.suffix in (".c", ".domino") and path.exists():
            program_spec = path.read_text()
            program_name = path.stem
        else:
            program_spec = args.program
    service = SwitchService(
        program=program_spec,
        program_name=program_name,
        engine=args.engine,
        config=MP5Config(num_pipelines=args.pipelines, seed=args.seed),
        queue_depth=args.queue_depth,
        monitor=args.monitor,
        faults=schedule,
        metrics_window=args.metrics_window,
        metrics_retention=args.metrics_retention,
        native=args.native,
        epoch_jobs=args.epoch_jobs,
    )

    def ready(svc):
        host, port = svc.address
        print(
            f"serving MP5 on http://{host}:{port} "
            f"(engine={svc.engine}, program={svc.program_name or 'none'})",
            flush=True,
        )

    try:
        asyncio.run(service.serve(args.host, args.port, ready=ready))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_faults(args) -> int:
    """``faults``: generate, validate, or describe a fault schedule."""
    if args.action == "generate":
        schedule = generate_schedule(
            seed=args.seed,
            kinds=args.kinds or None,
            num_pipelines=args.pipelines,
            horizon=args.horizon,
            events=args.events,
        )
        if args.out:
            schedule.save(args.out)
            print(f"wrote {len(schedule.faults)} faults to {args.out}")
        else:
            import json

            print(json.dumps(schedule.to_dict(), indent=2))
        return 0
    # validate / describe both start by loading + validating.
    schedule = _load_schedule(args.spec, args.pipelines)
    if schedule is None:
        return 2
    if args.action == "describe":
        print(schedule.describe())
    else:
        print(f"{args.spec}: valid ({len(schedule.faults)} faults)")
    return 0


def cmd_chaos(args) -> int:
    """``chaos``: fault-injection sweep over kinds x intensities."""
    settings = ChaosSettings(
        num_packets=args.packets,
        seeds=tuple(range(args.seeds)),
        intensities=tuple(args.intensities),
    )
    points = run_chaos_sweep(settings, jobs=args.jobs)
    print(render_chaos(points))
    if args.out:
        import json
        from dataclasses import asdict

        Path(args.out).write_text(
            json.dumps([asdict(p) for p in points], indent=2) + "\n"
        )
        print(f"\nwrote {args.out}")
    return 0


def cmd_table1(_args) -> int:
    print(render_table1())
    return 0


def cmd_fig7(args) -> int:
    """``fig7``: regenerate one Figure 7 panel."""
    settings = SweepSettings(
        num_packets=args.packets,
        seeds=tuple(range(args.seeds)),
        engine=args.engine,
        native=args.native,
        epoch_jobs=args.epoch_jobs,
    )
    sweeps = {
        "a": (sweep_pipelines, "7a"),
        "b": (sweep_stateful_stages, "7b"),
        "c": (sweep_register_size, "7c"),
        "d": (sweep_packet_size, "7d"),
    }
    runner, figure = sweeps[args.panel]
    print(render_sweep(runner(settings, jobs=args.jobs), figure))
    return 0


def cmd_fig8(args) -> int:
    settings = RealAppSettings(
        num_packets=args.packets,
        seeds=tuple(range(args.seeds)),
        engine=args.engine,
        native=args.native,
        epoch_jobs=args.epoch_jobs,
    )
    print(render_figure8(run_figure8(settings=settings, jobs=args.jobs)))
    return 0


def cmd_reproduce(args) -> int:
    # --monitor / --fail-on-violation ride the same instrumented run
    # --trace records, so any of the three switches it on.
    observe = args.trace or args.monitor or args.fail_on_violation
    if observe and args.out is None:
        print("reproduce --trace/--monitor needs --out to write into")
        return 2
    artifacts = run_all(
        out_dir=args.out,
        scale=args.scale,
        progress=lambda msg: print(f"[{msg}]"),
        jobs=args.jobs,
        observe=observe,
        engine=args.engine,
        native=args.native,
        epoch_jobs=args.epoch_jobs,
    )
    if args.out is None:
        for name, text in artifacts.items():
            print(f"\n{text}")
    if observe:
        header, _log = AlertLog.load(Path(args.out) / "alerts.jsonl")
        verdict = header.get("verdict", "?")
        print(f"health verdict: {verdict}")
        if args.fail_on_violation and verdict == VERDICT_VIOLATED:
            return 1
    return 0


def cmd_micro(args) -> int:
    settings = MicrobenchSettings(
        num_packets=args.packets, seeds=tuple(range(args.seeds))
    )
    if args.which == "d2":
        results = run_d2(settings)
        for result in results:
            print(
                f"{result.pattern}: dynamic/static {result.min_ratio:.2f}-"
                f"{result.max_ratio:.2f}x"
            )
    elif args.which == "d3":
        result = run_d3(settings)
        print(
            f"MP5 {np.mean(result.mp5):.3f}  "
            f"recirc {np.mean(result.recirculation):.3f}  "
            f"naive {np.mean(result.single_pipeline_state):.3f}  "
            f"({np.mean(result.avg_recirculations):.2f} recirc/pkt)"
        )
    else:
        result = run_d4(settings)
        print(
            f"C1 inversion fraction: MP5 {np.mean(result.with_d4):.3f}, "
            f"no-D4 {np.mean(result.without_d4):.3f}, "
            f"recirculation {np.mean(result.recirculation):.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MP5 (SIGCOMM 2022) reproduction: compiler, simulator, "
        "and experiment harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("programs", help="list bundled programs").set_defaults(
        func=cmd_programs
    )

    def add_program_args(p, packets_default=5000):
        p.add_argument("program", help="bundled name or .c/.domino file")
        p.add_argument("--pipelines", type=int, default=4)
        p.add_argument("--packets", type=int, default=packets_default)
        p.add_argument("--packet-size", type=int, default=64)
        p.add_argument("--seed", type=int, default=0)

    def add_native_args(p):
        """Vector-engine acceleration knobs (exact: results never change,
        only the wall clock). Other engines accept and ignore them."""
        p.add_argument(
            "--native",
            action="store_true",
            default=None,
            help="vector engine: run stateful service through fused "
            "per-stage kernels (Numba-jitted when installed, plain "
            "Python otherwise); byte-identical to the NumPy path",
        )
        p.add_argument(
            "--epoch-jobs",
            type=int,
            default=None,
            metavar="N",
            help="vector engine: worker processes for residue-class "
            "parallel service over shared memory (0 = one per CPU); "
            "results are byte-identical at any worker count",
        )

    p = sub.add_parser("compile", help="compile and show the pipeline layout")
    p.add_argument("program")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("tac", help="show the three-address code")
    p.add_argument("program")
    p.set_defaults(func=cmd_tac)

    p = sub.add_parser("run", help="simulate on MP5 and print statistics")
    add_program_args(p)
    p.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="fast",
        help="simulation engine: dense = executable specification, "
        "fast = sparse worklist (default), vector = batch SoA engine "
        "with full observability via trace reconstruction (falls back "
        "to fast only when faults are attached; see docs/simulator.md)",
    )
    add_native_args(p)
    p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record per-packet lifecycle events to PATH",
    )
    p.add_argument(
        "--trace-format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="chrome = trace_event JSON (open in Perfetto, default), "
        "jsonl = one event per line",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="save windowed time-series metrics as JSON to PATH",
    )
    p.add_argument(
        "--metrics-window",
        type=int,
        default=100,
        help="metrics window length in ticks (default 100)",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="time the simulator's per-tick phases and print a report",
    )
    p.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject faults from a schedule JSON (see `faults generate` "
        "and docs/faults.md)",
    )
    p.add_argument(
        "--monitor",
        action="store_true",
        help="stream online invariant checks + anomaly detection and "
        "print the health verdict (see docs/observability.md)",
    )
    p.add_argument(
        "--alerts-out",
        metavar="PATH",
        default=None,
        help="save the alert log as JSONL to PATH (implies --monitor)",
    )
    p.add_argument(
        "--fail-on-violation",
        action="store_true",
        help="exit non-zero when the health verdict is 'violated' — any "
        "critical alert: invariant break or packet loss (implies "
        "--monitor)",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "serve",
        help="run the long-lived switch daemon with its HTTP control plane",
    )
    p.add_argument(
        "program",
        nargs="?",
        default=None,
        help="bundled name or .c/.domino file to start with (optional: "
        "load one later via POST /program)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8585, help="0 = ephemeral")
    p.add_argument("--pipelines", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="fast",
        help="engine every segment runs on; 'vector' streams too — each "
        "epoch executes as soon as the ingest watermark proves its "
        "arrivals complete",
    )
    add_native_args(p)
    p.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="ingest queue capacity in batches; a full queue answers "
        "POST /ingest with HTTP 429 (default 8)",
    )
    p.add_argument(
        "--monitor",
        action="store_true",
        help="attach an invariant monitor to every segment (feeds "
        "/health and /alerts; see docs/observability.md)",
    )
    p.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="arm a fault-schedule JSON from startup (also attachable "
        "at runtime via POST /faults)",
    )
    p.add_argument(
        "--metrics-window",
        type=int,
        default=100,
        help="window length in ticks for the /metrics series "
        "(default 100)",
    )
    p.add_argument(
        "--metrics-retention",
        type=int,
        default=None,
        metavar="ROWS",
        help="cap in-memory window rows per series; over the cap old "
        "rows are thinned deterministically (keep every 2nd, newest "
        "always kept), bounding daemon memory on long runs (default: "
        "unbounded)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "trace-summary",
        help="print stall rankings and flow timelines from a --trace file",
    )
    p.add_argument("trace", help="trace file (Chrome JSON or JSONL)")
    p.add_argument(
        "--top", type=int, default=10, help="rows per stall ranking"
    )
    p.add_argument(
        "--flows", type=int, default=5, help="flows to show timelines for"
    )
    p.add_argument(
        "--alerts",
        metavar="PATH",
        default=None,
        help="also render an alert log saved with `run --alerts-out`",
    )
    p.set_defaults(func=cmd_trace_summary)

    p = sub.add_parser(
        "monitor-report",
        help="render an alert log (from `run --alerts-out`) as a health "
        "timeline",
    )
    p.add_argument("alerts", help="alert-log JSONL file")
    p.add_argument(
        "--width", type=int, default=60, help="timeline columns (default 60)"
    )
    p.add_argument(
        "--max-alerts",
        type=int,
        default=20,
        help="alert rows to list under the timeline (default 20)",
    )
    p.set_defaults(func=cmd_monitor_report)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard over a serving daemon (SSE push "
        "with cursor-polling fallback), or a recorded artifact pair",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8585)
    p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="redraw interval in seconds (default 1.0)",
    )
    p.add_argument(
        "--width",
        type=int,
        default=48,
        help="sparkline columns / window rows kept per series "
        "(default 48)",
    )
    p.add_argument(
        "--alert-rows",
        type=int,
        default=8,
        help="alert-tail rows (default 8)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no ANSI clear)",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="offline mode: render a recorded metrics.json instead of "
        "connecting to a daemon",
    )
    p.add_argument(
        "--alerts-log",
        metavar="PATH",
        default=None,
        help="offline mode: alert-log JSONL to show alongside "
        "--metrics",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "export-metrics",
        help="convert a recorded metrics.json to OpenMetrics text "
        "(offline twin of GET /metrics.prom)",
    )
    p.add_argument("metrics", help="metrics.json written by `run --metrics`")
    p.add_argument(
        "--prefix",
        default="mp5_",
        help="metric-name prefix (default mp5_)",
    )
    p.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write here instead of stdout",
    )
    p.set_defaults(func=cmd_export_metrics)

    p = sub.add_parser("equiv", help="check functional equivalence")
    add_program_args(p, packets_default=2000)
    p.set_defaults(func=cmd_equiv)

    p = sub.add_parser("faults", help="fault-schedule utilities")
    fault_sub = p.add_subparsers(dest="action", required=True)
    g = fault_sub.add_parser(
        "generate", help="emit a random (seed-determined) schedule"
    )
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--pipelines", type=int, default=4)
    g.add_argument(
        "--horizon", type=int, default=400, help="last tick faults may end at"
    )
    g.add_argument("--events", type=int, default=4, help="number of faults")
    g.add_argument(
        "--kinds",
        nargs="*",
        choices=FAULT_KINDS,
        default=None,
        help="restrict to these fault kinds (default: all)",
    )
    g.add_argument("--out", metavar="PATH", default=None, help="write JSON here")
    g.set_defaults(func=cmd_faults)
    for action, desc in (
        ("validate", "check a schedule JSON, exit non-zero if invalid"),
        ("describe", "print a human summary of a schedule JSON"),
    ):
        v = fault_sub.add_parser(action, help=desc)
        v.add_argument("spec", help="fault-schedule JSON file")
        v.add_argument("--pipelines", type=int, default=4)
        v.set_defaults(func=cmd_faults)

    sub.add_parser("table1", help="regenerate Table 1").set_defaults(
        func=cmd_table1
    )

    def jobs_type(value):
        jobs = int(value)
        if jobs < 0:
            raise argparse.ArgumentTypeError(
                "must be >= 0 (0 = one worker per CPU)"
            )
        return jobs

    def add_jobs_arg(p):
        p.add_argument(
            "--jobs",
            type=jobs_type,
            default=1,
            help="worker processes for the sweep: 1 = serial (default), "
            "0 = one per CPU; results are identical at any job count",
        )

    def add_engine_arg(p):
        p.add_argument(
            "--engine",
            choices=sorted(ENGINES),
            default="fast",
            help="simulation engine (results are identical for every "
            "engine; vector is the batch fast path)",
        )

    p = sub.add_parser("fig7", help="regenerate a Figure 7 panel")
    p.add_argument("panel", choices=("a", "b", "c", "d"))
    p.add_argument("--packets", type=int, default=4000)
    p.add_argument("--seeds", type=int, default=2)
    add_jobs_arg(p)
    add_engine_arg(p)
    add_native_args(p)
    p.set_defaults(func=cmd_fig7)

    p = sub.add_parser("fig8", help="regenerate Figure 8")
    p.add_argument("--packets", type=int, default=4000)
    p.add_argument("--seeds", type=int, default=2)
    add_jobs_arg(p)
    add_engine_arg(p)
    add_native_args(p)
    p.set_defaults(func=cmd_fig8)

    p = sub.add_parser(
        "reproduce", help="regenerate every table/figure into a directory"
    )
    p.add_argument("--out", default=None, help="output directory")
    p.add_argument(
        "--scale",
        choices=("tiny", "small", "full", "large", "xlarge"),
        default="full",
    )
    p.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="engine for the Figure 7/8 simulations (default: the "
        "scale's preference — vector at --scale large/xlarge, else "
        "fast); results are identical for every engine",
    )
    add_native_args(p)
    p.add_argument(
        "--trace",
        action="store_true",
        help="also record one instrumented run (trace + metrics + stall "
        "summary) into --out",
    )
    p.add_argument(
        "--monitor",
        action="store_true",
        help="run the instrumented run's invariant monitor and print "
        "its health verdict (implied by --trace, which always attaches "
        "the monitor)",
    )
    p.add_argument(
        "--fail-on-violation",
        action="store_true",
        help="exit non-zero when the instrumented run's health verdict "
        "is 'violated' (implies --monitor)",
    )
    add_jobs_arg(p)
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser(
        "chaos", help="fault-injection sweep (throughput + recovery)"
    )
    p.add_argument("--packets", type=int, default=2000)
    p.add_argument("--seeds", type=int, default=3)
    p.add_argument(
        "--intensities",
        type=float,
        nargs="*",
        default=(0.25, 0.5, 1.0),
        help="fault severities to sweep, each in (0, 1]",
    )
    p.add_argument(
        "--out", metavar="PATH", default=None, help="also write points as JSON"
    )
    add_jobs_arg(p)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("micro", help="run a §4.3.2 microbenchmark")
    p.add_argument("which", choices=("d2", "d3", "d4"))
    p.add_argument("--packets", type=int, default=4000)
    p.add_argument("--seeds", type=int, default=3)
    p.set_defaults(func=cmd_micro)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    # One CLI invocation = one warning budget: a fallback notice prints
    # once per run, but repeated in-process invocations (tests, REPL)
    # each start fresh.
    from .mp5.vector import reset_fallback_warnings

    reset_fallback_warnings()
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
