"""Unit tests for the perf-regression gate in benchmarks/run_bench.py.

The gate compares each timed measurement's ``seconds_min`` against the
most recent ``BENCH_history.jsonl`` entry for the same measurement
name and workload string, and fails the run on a >``--max-slowdown``
slowdown. These tests drive the two pure functions directly — the
actual measurements are exercised by CI's bench-smoke job.
"""

import importlib.util
import json
import sys
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "run_bench.py"

spec = importlib.util.spec_from_file_location("run_bench", BENCH_PATH)
run_bench = importlib.util.module_from_spec(spec)
sys.modules.setdefault("run_bench", run_bench)
spec.loader.exec_module(run_bench)


def _history_line(**measurements):
    return json.dumps(
        {"timestamp": "t", "git_sha": "abc", "quick": True, **measurements}
    )


def _measure(workload, seconds_min):
    return {"workload": workload, "seconds_min": seconds_min}


def test_load_history_latest_keeps_last_entry(tmp_path):
    path = tmp_path / "hist.jsonl"
    path.write_text(
        _history_line(engine=_measure("w1", 0.5))
        + "\n"
        + _history_line(engine=_measure("w1", 0.4), vector_50k=_measure("w2", 2.0))
        + "\n"
    )
    latest = run_bench.load_history_latest(path)
    assert latest[("engine", "w1")]["seconds_min"] == 0.4
    assert latest[("vector_50k", "w2")]["seconds_min"] == 2.0


def test_load_history_latest_keys_by_measurement_name(tmp_path):
    """engine / engine_traced share a workload string but must never be
    compared against each other — tracing costs ~60% by design."""
    path = tmp_path / "hist.jsonl"
    path.write_text(
        _history_line(
            engine=_measure("w", 0.1), engine_traced=_measure("w", 0.16)
        )
        + "\n"
    )
    latest = run_bench.load_history_latest(path)
    assert latest[("engine", "w")]["seconds_min"] == 0.1
    assert latest[("engine_traced", "w")]["seconds_min"] == 0.16


def test_load_history_tolerates_junk(tmp_path):
    path = tmp_path / "hist.jsonl"
    path.write_text(
        "not json\n\n" + _history_line(engine=_measure("w", 0.3)) + "\n"
    )
    assert run_bench.load_history_latest(path) == {
        ("engine", "w"): _measure("w", 0.3)
    }


def test_load_history_missing_file(tmp_path):
    assert run_bench.load_history_latest(tmp_path / "absent.jsonl") == {}


def test_check_regression_passes_within_limit(capsys):
    report = {"engine": _measure("w", 0.113)}
    latest = {("engine", "w"): _measure("w", 0.100)}
    assert run_bench.check_regression(report, latest, 0.15) == 0
    assert "OK" in capsys.readouterr().out


def test_check_regression_fails_beyond_limit(capsys):
    report = {"engine": _measure("w", 0.120)}
    latest = {("engine", "w"): _measure("w", 0.100)}
    assert run_bench.check_regression(report, latest, 0.15) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_check_regression_skips_new_measurements(capsys):
    """A measurement with no history (first run after adding it) is not
    a failure; the gate reports nothing to compare."""
    report = {"vector_50k": _measure("new workload", 1.0)}
    assert run_bench.check_regression(report, {}, 0.15) == 0
    assert "no matching history" in capsys.readouterr().out


def test_check_regression_ignores_untimed_sections():
    report = {
        "seed_baseline": {"commit": "275ecc4"},
        "chaos_smoke": {"workload": "chaos", "serial_seconds": 0.1},
        "engine": _measure("w", 0.09),
    }
    latest = {("engine", "w"): _measure("w", 0.10)}
    assert run_bench.check_regression(report, latest, 0.15) == 0


def test_faster_is_never_a_regression():
    report = {"engine": _measure("w", 0.01)}
    latest = {("engine", "w"): _measure("w", 0.10)}
    assert run_bench.check_regression(report, latest, 0.15) == 0
