"""Tests for the experiment harness (scaled-down runs of every driver)."""

import pytest

from repro.harness import (
    MicrobenchSettings,
    RealAppSettings,
    SweepSettings,
    format_table,
    render_figure8,
    render_microbench,
    render_sweep,
    render_table1,
    run_application,
    run_d2,
    run_d3,
    run_d4,
    run_table1,
    sweep_packet_size,
    sweep_pipelines,
)
from repro.apps import FLOWLET

SMALL_MICRO = MicrobenchSettings(num_packets=1200, seeds=(0,))
SMALL_SWEEP = SweepSettings(num_packets=1200, seeds=(0,))


class TestTable1Driver:
    def test_twelve_cells(self):
        cells = run_table1()
        assert len(cells) == 12

    def test_all_cells_meet_clock_target(self):
        assert all(c.meets_1ghz for c in run_table1())

    def test_model_close_to_paper(self):
        for cell in run_table1():
            assert cell.area_mm2 == pytest.approx(cell.paper_area_mm2, rel=0.05)

    def test_render_contains_sram_note(self):
        text = render_table1()
        assert "SRAM overhead" in text
        assert "Table 1" in text


class TestSensitivityDriver:
    def test_pipeline_sweep_point_fields(self):
        points = sweep_pipelines(SMALL_SWEEP, values=(1, 4))
        assert [p.value for p in points] == [1, 4]
        assert points[0].mp5_throughput >= points[1].mp5_throughput

    def test_packet_size_sweep_reaches_line_rate(self):
        points = sweep_packet_size(SMALL_SWEEP, values=(64, 256))
        assert points[1].mp5_throughput > 0.98

    def test_render_sweep(self):
        points = sweep_pipelines(SMALL_SWEEP, values=(1, 2))
        text = render_sweep(points, "7a")
        assert "Figure 7a" in text
        assert "ideal" in text


class TestMicrobenchDriver:
    def test_d2_ratios_at_least_near_one(self):
        results = run_d2(SMALL_MICRO)
        assert {r.pattern for r in results} == {"skewed", "uniform"}
        for result in results:
            assert result.min_ratio > 0.8

    def test_d4_zero_with_phantoms(self):
        result = run_d4(SMALL_MICRO)
        assert all(v == 0.0 for v in result.with_d4)
        assert all(v > 0.0 for v in result.without_d4)
        assert all(v > 0.0 for v in result.recirculation)

    def test_d3_ordering(self):
        result = run_d3(SMALL_MICRO)
        for mp5, recirc in zip(result.mp5, result.recirculation):
            assert recirc < mp5
        assert all(r > 1.0 for r in result.avg_recirculations)

    def test_render_microbench(self):
        text = render_microbench(
            run_d2(SMALL_MICRO), run_d4(SMALL_MICRO), run_d3(SMALL_MICRO)
        )
        assert "D2" in text and "D4" in text and "D3" in text


class TestRealAppsDriver:
    def test_single_app_sweep(self):
        points = run_application(
            FLOWLET,
            pipeline_counts=(1, 2),
            settings=RealAppSettings(num_packets=800, seeds=(0,)),
        )
        assert all(p.throughput > 0.95 for p in points)
        assert all(p.max_queue_depth <= 16 for p in points)

    def test_render_figure8(self):
        points = run_application(
            FLOWLET,
            pipeline_counts=(1,),
            settings=RealAppSettings(num_packets=400, seeds=(0,)),
        )
        text = render_figure8({"flowlet": points})
        assert "Figure 8a" in text


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), (10, 3.25)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text

    def test_format_table_no_title(self):
        text = format_table(["x"], [(1,)])
        assert text.splitlines()[0].strip() == "x"
