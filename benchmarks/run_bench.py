"""Standalone performance harness: measure the simulator and the sweep
runner, write the numbers to ``benchmarks/BENCH_mp5.json``.

Two measurements:

* **engine** — the 2000-packet sensitivity workload of
  ``test_mp5_simulation_throughput`` (4 pipelines, 4 stateful stages,
  512-entry registers), best-of-N wall clock and the derived ticks/sec;
* **sweep** — ``run_all(scale="tiny")`` end to end, serial and with
  ``--jobs`` workers, after checking the two produce a byte-identical
  ``results.json``.

The ``seed_baseline`` block records the same engine workload measured
on the pre-fast-path engine (commit ``275ecc4``) **on this reference
host**; re-measure it locally (``git worktree add /tmp/seed 275ecc4``
and run this script there) before trusting the speedup on different
hardware.

A third measurement, **engine_traced**, re-runs the engine workload
with a :class:`repro.obs.TraceRecorder` and metrics registry attached,
so the observability overhead (both enabled and disabled) is tracked
next to the raw numbers. **engine_monitored** does the same with only
the :class:`repro.obs.InvariantMonitor` attached — the cost of the
online invariant checks. **engine_vector** times the vector (batch
SoA) engine on the same 2000-packet workload and quotes its speedup
over the fast engine measured in the same process; **vector_50k** is
the vector engine on a 50000-packet stream — the workload size behind
``reproduce --scale large``.

**engine_native** re-runs the 2000-packet vector workload with the
fused native kernel tier on (``native=True``), and **native_50k** the
50k stream with ``native=True, epoch_jobs=0`` — the configuration
behind ``reproduce --scale xlarge``. Both quote their speedup against
the same-process plain vector runs. On hosts without Numba the fused
tier falls back to plain Python (wave plans keep the NumPy path), and
with one CPU the epoch pool stays serial — the numbers then measure
pure dispatch overhead, by design near 1.0x; the tier pays off where
Numba and cores exist. **vector_1m** times one 1M-packet native run
(skipped under ``--quick``), the ``scale=xlarge`` per-point workload.

**engine_vector_traced** and **engine_vector_monitored** re-run the
2000-packet vector workload with a recorder + metrics registry and an
invariant monitor attached, respectively — the cost of epoch-trace
reconstruction (``repro.obs.reconstruct``). Both quote their overhead
against the same-process sinks-off ``engine_vector`` run, which keeps
its measurement name and workload string, so ``--check-regression``
continues to gate the zero-overhead disabled path against history.

**serve_fast** and **serve_vector** push the sensitivity workload
through the live daemon — NDJSON ``POST /ingest`` chunks from a
:class:`~repro.service.client.ServiceClient`, watermark-gated
streaming execution, then a drain — timing the full client→segment-
close path, the ingest rate (packets/sec through HTTP + parse + feed),
and the service's own first-feed→first-egress latency gauge. 50k
packets in a full run, 5k under ``--quick``. ``serve_vector`` also
quotes first egress as a fraction of segment close: the streaming win
over the seed buffer-at-close vector adapter, whose first egress *was*
segment close (fraction 1.0 by construction).

Every completed run (including ``--quick``) also appends one line to
``benchmarks/BENCH_history.jsonl`` — git SHA, timestamp, and all
measurements — so perf is trackable across commits; CI uploads the
file as a workflow artifact. ``--check-regression`` turns that log
into a gate: each timed measurement is compared against the most
recent history entry for the same measurement and workload, and the
run exits nonzero on a >``--max-slowdown`` (default 15%) slowdown.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--rounds 15] [--jobs 4]
    # CI smoke: fewer rounds, no sweep, fail if the tracing-disabled
    # engine regressed >10% against the committed BENCH_mp5.json:
    PYTHONPATH=src python benchmarks/run_bench.py --quick --check-baseline
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import tempfile
import time
from pathlib import Path

from repro.harness.runall import run_all
from repro.mp5 import ENGINES, MP5Config, run_mp5
from repro.obs import InvariantMonitor, MetricsRegistry, TraceRecorder
from repro.workloads import (
    clone_packets,
    make_sensitivity_program,
    sensitivity_trace,
)

# The engine workload of benchmarks/test_simulator_performance.py,
# timed on the seed engine (commit 275ecc4) on the reference host:
# best-of-15 0.1272 s, median 0.1459 s for the 2000-packet run.
SEED_BASELINE = {
    "commit": "275ecc4",
    "engine_seconds_min": 0.1272,
    "engine_seconds_median": 0.1459,
}


def bench_engine(
    rounds: int,
    observed: bool = False,
    monitored: bool = False,
    engine: str = "fast",
    num_packets: int = 2000,
    native: bool = None,
    epoch_jobs: int = None,
) -> dict:
    program = make_sensitivity_program(4, 512)
    trace = sensitivity_trace(num_packets, 4, 4, 512, seed=0)
    runner = ENGINES[engine]
    times = []
    ticks = None
    events = None
    alerts = None
    for _ in range(rounds):
        batch = clone_packets(trace)
        recorder = TraceRecorder() if observed else None
        metrics = MetricsRegistry(window=100) if observed else None
        monitor = InvariantMonitor() if monitored else None
        start = time.perf_counter()
        stats, _ = runner(
            program,
            batch,
            MP5Config(num_pipelines=4),
            recorder=recorder,
            metrics=metrics,
            monitor=monitor,
            native=native,
            epoch_jobs=epoch_jobs,
        )
        times.append(time.perf_counter() - start)
        ticks = stats.ticks
        assert stats.egressed == num_packets
        if observed:
            events = len(recorder.events)
        if monitored:
            alerts = len(monitor.alerts)
            assert monitor.health_report().verdict == "ok"
    best = min(times)
    median = statistics.median(times)
    workload = f"sensitivity {num_packets} pkts, k=4, m=4, r=512"
    if engine != "fast":
        workload += f", {engine} engine"
    if native:
        workload += ", native"
    if epoch_jobs is not None:
        workload += f", epoch_jobs={epoch_jobs}"
    report = {
        "workload": workload,
        "rounds": rounds,
        "ticks": ticks,
        "seconds_min": round(best, 4),
        "seconds_median": round(median, 4),
        "ticks_per_sec": round(ticks / best),
    }
    if num_packets == 2000:
        # The seed baseline was measured on this exact workload only.
        report["speedup_vs_seed_min"] = round(
            SEED_BASELINE["engine_seconds_min"] / best, 2
        )
        report["speedup_vs_seed_median"] = round(
            SEED_BASELINE["engine_seconds_median"] / median, 2
        )
    if observed:
        report["events"] = events
    if monitored:
        report["alerts"] = alerts
    return report


def _trace_records(trace) -> list:
    """DataPackets → ``/ingest`` JSON records (ids are reassigned by
    the daemon in arrival order, so none are carried)."""
    records = []
    for p in trace:
        rec = {
            "arrival": p.arrival,
            "port": p.port,
            "headers": p.headers,
            "size": p.size_bytes,
        }
        if p.flow_id is not None:
            rec["flow"] = p.flow_id
        records.append(rec)
    return records


def bench_serve(
    engine: str, num_packets: int, rounds: int, chunk: int = 512
) -> dict:
    """Serve the sensitivity workload through the live daemon: NDJSON
    ingest over HTTP with 429-backoff, watermark-gated streaming
    execution, drain. Each round is one segment on one long-lived
    service; backpressure retries are part of the measured path."""
    from repro.service.client import ServiceClient
    from repro.service.daemon import ServiceThread, SwitchService

    program = make_sensitivity_program(4, 512)
    trace = sensitivity_trace(num_packets, 4, 4, 512, seed=0)
    records = _trace_records(trace)
    service = SwitchService(
        program=program,
        engine=engine,
        config=MP5Config(num_pipelines=4),
        metrics=False,
    )
    totals, ingests, latencies = [], [], []
    retries = 0
    with ServiceThread(service) as thread:
        client = ServiceClient(*thread.address, timeout=120.0)
        client.wait_ready()
        for _ in range(rounds):
            start = time.perf_counter()
            sent = client.replay_trace(records, chunk=chunk)
            ingests.append(time.perf_counter() - start)
            record = client.drain()["closed_segment"]
            totals.append(time.perf_counter() - start)
            assert record["offered"] == num_packets, record
            assert record["drained"], record
            retries += sent["retries"]
            latency = client.metrics()["service"]["first_egress_latency"]
            if latency is not None:
                latencies.append(latency)
    return {
        "workload": (
            f"served sensitivity {num_packets} pkts, k=4, {engine} engine, "
            f"ndjson chunk {chunk}"
        ),
        "rounds": rounds,
        "packets": num_packets,
        "seconds_min": round(min(totals), 4),
        "seconds_median": round(statistics.median(totals), 4),
        "ingest_seconds_min": round(min(ingests), 4),
        "ingest_pps": round(num_packets / min(ingests)),
        "first_egress_latency": (
            round(min(latencies), 4) if latencies else None
        ),
        "retries_429": retries,
    }


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parent,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def append_history(report: dict, quick: bool, path: Path) -> None:
    """Append one line per completed run: perf over time, by commit."""
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_sha": _git_sha(),
        "quick": quick,
        **report,
    }
    with path.open("a") as fh:
        fh.write(json.dumps(record) + "\n")


def check_baseline(engine: dict, baseline: dict, max_regression: float) -> int:
    """Compare the tracing-disabled engine time against the committed
    baseline; returns a nonzero exit code on regression."""
    if not baseline:
        print("no stored baseline; nothing to compare")
        return 0
    base_min = baseline["engine"]["seconds_min"]
    measured = engine["seconds_min"]
    ratio = measured / base_min
    verdict = "OK" if ratio <= 1 + max_regression else "REGRESSION"
    print(
        f"baseline check: measured {measured:.4f}s vs baseline "
        f"{base_min:.4f}s ({ratio:.2%} of baseline, limit "
        f"{1 + max_regression:.0%}) -> {verdict}"
    )
    return 0 if verdict == "OK" else 1


def load_history_latest(path: Path) -> dict:
    """Map each timed measurement to its most recent history entry.

    A history line flattens one report, so any value that is a dict with
    ``workload`` and ``seconds_min`` keys is a timed measurement. The
    map is keyed by ``(measurement name, workload string)`` — the
    traced/monitored variants share a workload string with the plain
    engine run but must never be compared against each other — and
    later lines overwrite earlier ones.
    """
    latest: dict = {}
    if not path.exists():
        return latest
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        for key, value in record.items():
            if (
                isinstance(value, dict)
                and "workload" in value
                and "seconds_min" in value
            ):
                latest[(key, value["workload"])] = value
    return latest


def check_regression(report: dict, latest: dict, max_slowdown: float) -> int:
    """Gate every timed measurement against its last history entry.

    Unlike ``check_baseline`` (which pins the fast engine to the
    committed BENCH_mp5.json), this compares each measurement's
    ``seconds_min`` to the most recent ``BENCH_history.jsonl`` record
    with the same workload string, so new measurements (e.g. the vector
    engine) are covered from their second run onward. Returns nonzero
    if any measurement slowed down more than ``max_slowdown``.
    """
    failures = []
    compared = 0
    for key, value in report.items():
        if not (
            isinstance(value, dict)
            and "workload" in value
            and "seconds_min" in value
        ):
            continue
        prev = latest.get((key, value["workload"]))
        if prev is None or prev["seconds_min"] <= 0:
            continue
        compared += 1
        ratio = value["seconds_min"] / prev["seconds_min"]
        verdict = "OK" if ratio <= 1 + max_slowdown else "REGRESSION"
        print(
            f"regression check: {key} ({value['workload']}): "
            f"{value['seconds_min']:.4f}s vs last {prev['seconds_min']:.4f}s "
            f"({ratio:.2%}, limit {1 + max_slowdown:.0%}) -> {verdict}"
        )
        if verdict != "OK":
            failures.append(key)
    if not compared:
        print("regression check: no matching history entries to compare")
    return 1 if failures else 0


def bench_chaos_smoke(jobs: int) -> dict:
    """Tiny chaos sweep (repro.harness.chaos): checks the fault path
    stays healthy and job-count invariant, and times it."""
    from repro.harness import ChaosSettings, run_chaos_sweep

    settings = ChaosSettings(num_packets=300, seeds=(0,), intensities=(1.0,))
    start = time.perf_counter()
    serial = run_chaos_sweep(settings, jobs=1)
    serial_s = time.perf_counter() - start
    parallel = run_chaos_sweep(settings, jobs=jobs)
    baseline = next(p for p in serial if p.kind == "none")
    return {
        "workload": "chaos sweep, 300 pkts, 4 kinds x intensity 1.0",
        "serial_seconds": round(serial_s, 2),
        "jobs_invariant": serial == parallel,
        "baseline_throughput": round(baseline.throughput, 3),
        "faulted_throughput_min": round(
            min(p.throughput for p in serial if p.kind != "none"), 3
        ),
    }


def bench_sweep(jobs: int) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        serial_dir = Path(tmp) / "serial"
        par_dir = Path(tmp) / "parallel"
        start = time.perf_counter()
        run_all(out_dir=str(serial_dir), scale="tiny", jobs=1)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        run_all(out_dir=str(par_dir), scale="tiny", jobs=jobs)
        parallel_s = time.perf_counter() - start
        identical = (serial_dir / "results.json").read_bytes() == (
            par_dir / "results.json"
        ).read_bytes()
    return {
        "workload": 'run_all(scale="tiny")',
        "jobs": jobs,
        "serial_seconds": round(serial_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "speedup": round(serial_s / parallel_s, 2),
        "results_json_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 5 rounds, skip the sweep, don't rewrite the "
        "stored baseline file",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="exit 1 if the tracing-disabled engine time regressed more "
        "than --max-regression vs the stored BENCH_mp5.json",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.10,
        help="allowed fractional slowdown for --check-baseline "
        "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="exit 1 if any timed measurement slowed down more than "
        "--max-slowdown vs the last BENCH_history.jsonl entry with the "
        "same workload",
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=0.15,
        help="allowed fractional slowdown for --check-regression "
        "(default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent / "BENCH_mp5.json"),
    )
    parser.add_argument(
        "--history",
        default=str(Path(__file__).resolve().parent / "BENCH_history.jsonl"),
        help="append-only JSONL perf log, one record per completed run",
    )
    args = parser.parse_args()

    out_path = Path(args.out)
    stored_baseline = (
        json.loads(out_path.read_text()) if out_path.exists() else {}
    )
    rounds = 5 if args.quick else args.rounds
    engine = bench_engine(rounds)
    engine_traced = bench_engine(rounds, observed=True)
    engine_monitored = bench_engine(rounds, monitored=True)
    engine_vector = bench_engine(rounds, engine="vector")
    # Vector speedup is quoted against the fast engine on the same
    # workload in the same process — the number the PR gates on.
    engine_vector["speedup_vs_fast_min"] = round(
        engine["seconds_min"] / engine_vector["seconds_min"], 2
    )
    engine_vector["speedup_vs_fast_median"] = round(
        engine["seconds_median"] / engine_vector["seconds_median"], 2
    )
    # Observability on the vector engine rides trace reconstruction;
    # quote its cost against the same-process sinks-off vector run.
    engine_vector_traced = bench_engine(rounds, observed=True, engine="vector")
    engine_vector_traced["overhead_vs_untraced"] = round(
        engine_vector_traced["seconds_min"] / engine_vector["seconds_min"] - 1,
        4,
    )
    engine_vector_monitored = bench_engine(
        rounds, monitored=True, engine="vector"
    )
    engine_vector_monitored["overhead_vs_unmonitored"] = round(
        engine_vector_monitored["seconds_min"] / engine_vector["seconds_min"]
        - 1,
        4,
    )
    engine_native = bench_engine(rounds, engine="vector", native=True)
    engine_native["speedup_vs_vector_min"] = round(
        engine_vector["seconds_min"] / engine_native["seconds_min"], 2
    )
    engine_native["speedup_vs_vector_median"] = round(
        engine_vector["seconds_median"] / engine_native["seconds_median"], 2
    )
    # The 50k measurements keep min-of-3 even under --quick: a single
    # round on a loaded 1-CPU host can spike 2-3x from scheduler
    # contention, which would trip the 15% --check-regression gate on
    # noise rather than a real slowdown.
    vector_50k = bench_engine(3, engine="vector", num_packets=50000)
    native_50k = bench_engine(
        3,
        engine="vector",
        num_packets=50000,
        native=True,
        epoch_jobs=0,
    )
    native_50k["speedup_vs_vector_50k_min"] = round(
        vector_50k["seconds_min"] / native_50k["seconds_min"], 2
    )
    serve_packets = 5000 if args.quick else 50000
    serve_rounds = 2 if args.quick else 3
    serve_fast = bench_serve("fast", serve_packets, serve_rounds)
    serve_vector = bench_serve("vector", serve_packets, serve_rounds)
    if serve_vector["first_egress_latency"] is not None:
        # The seed buffer-at-close adapter's first egress was segment
        # close (fraction 1.0); streaming should put this well below it.
        serve_vector["first_egress_frac_of_close"] = round(
            serve_vector["first_egress_latency"]
            / serve_vector["seconds_min"],
            4,
        )
    overhead = engine_traced["seconds_min"] / engine["seconds_min"] - 1
    monitor_overhead = engine_monitored["seconds_min"] / engine["seconds_min"] - 1
    chaos = bench_chaos_smoke(args.jobs)
    report = {
        "engine": engine,
        "engine_traced": dict(
            engine_traced, overhead_vs_untraced=round(overhead, 4)
        ),
        "engine_monitored": dict(
            engine_monitored, overhead_vs_unmonitored=round(monitor_overhead, 4)
        ),
        "engine_vector": engine_vector,
        "engine_vector_traced": engine_vector_traced,
        "engine_vector_monitored": engine_vector_monitored,
        "engine_native": engine_native,
        "vector_50k": vector_50k,
        "native_50k": native_50k,
        "serve_fast": serve_fast,
        "serve_vector": serve_vector,
        "chaos_smoke": chaos,
        "seed_baseline": SEED_BASELINE,
    }
    if not args.quick:
        report["vector_1m"] = bench_engine(
            1, engine="vector", num_packets=1_000_000, native=True
        )
    if not chaos["jobs_invariant"]:
        raise SystemExit("chaos sweep diverged between serial and parallel")
    if not args.quick:
        report["sweep"] = bench_sweep(args.jobs)
        if not report["sweep"]["results_json_identical"]:
            raise SystemExit("serial and parallel results.json diverged")
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    history_path = Path(args.history)
    # Snapshot the per-workload history *before* appending this run, so
    # the regression gate compares against the previous run, not itself.
    history_latest = (
        load_history_latest(history_path) if args.check_regression else {}
    )
    append_history(report, args.quick, history_path)
    print(json.dumps(report, indent=2))
    code = 0
    if args.check_baseline:
        code |= check_baseline(engine, stored_baseline, args.max_regression)
    if args.check_regression:
        code |= check_regression(report, history_latest, args.max_slowdown)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
