"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.domino import program_names


class TestCli:
    def test_programs_lists_catalog(self, capsys):
        assert main(["programs"]) == 0
        out = capsys.readouterr().out.split()
        assert out == program_names()

    def test_compile_shows_layout(self, capsys):
        assert main(["compile", "figure3"]) == 0
        out = capsys.readouterr().out
        assert "resolution" in out
        assert "reg3" in out

    def test_tac_shows_instructions(self, capsys):
        assert main(["tac", "packet_counter"]) == 0
        out = capsys.readouterr().out
        assert "count[0]" in out

    def test_compile_from_file(self, tmp_path, capsys):
        source = tmp_path / "prog.domino"
        source.write_text(
            "struct Packet { int x; };\nint c = 0;\n"
            "void func(struct Packet p) { c = c + p.x; }"
        )
        assert main(["compile", str(source)]) == 0
        assert "prog" in capsys.readouterr().out

    def test_run_prints_summary(self, capsys):
        assert main(["run", "heavy_hitter", "--packets", "400"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "egressed" in out

    def test_equiv_exit_code_zero_on_success(self, capsys):
        code = main(
            ["equiv", "sequencer", "--packets", "300", "--pipelines", "2"]
        )
        assert code == 0
        assert "EQUAL" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "1 GHz" in capsys.readouterr().out

    def test_micro_d4(self, capsys):
        code = main(["micro", "d4", "--packets", "800", "--seeds", "1"])
        assert code == 0
        assert "MP5 0.000" in capsys.readouterr().out

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            main(["compile", "definitely_not_a_program"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestObservabilityCli:
    def test_run_with_trace_and_summary(self, tmp_path, capsys):
        trace_path = tmp_path / "run.trace.json"
        code = main(
            [
                "run", "heavy_hitter", "--packets", "300",
                "--trace", str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out and trace_path.exists()

        assert main(["trace-summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "Top phantom-wait stalls" in out
        assert "Top FIFO-block stalls" in out
        assert "Per-flow timelines" in out

    def test_run_with_jsonl_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        code = main(
            [
                "run", "heavy_hitter", "--packets", "200",
                "--trace", str(trace_path), "--trace-format", "jsonl",
            ]
        )
        assert code == 0
        assert trace_path.read_text().startswith('{"format": "mp5-trace-events"')
        assert main(["trace-summary", str(trace_path), "--top", "3"]) == 0
        assert "Event counts" in capsys.readouterr().out

    def test_run_with_profile(self, capsys):
        code = main(["run", "heavy_hitter", "--packets", "200", "--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fast-path phase breakdown" in out
        assert "service" in out

    def test_run_with_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                "run", "heavy_hitter", "--packets", "200",
                "--metrics", str(metrics_path), "--metrics-window", "50",
            ]
        )
        assert code == 0
        doc = json.loads(metrics_path.read_text())
        assert doc["window"] == 50
        assert "egressed" in doc["series"]

    def test_reproduce_trace_requires_out(self, capsys):
        assert main(["reproduce", "--scale", "tiny", "--trace"]) == 2
        assert "--out" in capsys.readouterr().out

    def test_trace_summary_rejects_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert main(["trace-summary", str(empty)]) == 2
        out = capsys.readouterr().out
        assert "cannot read" in out
        assert "Traceback" not in out

    def test_trace_summary_rejects_truncated_file(self, tmp_path, capsys):
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_text('{"format": "mp5-trace-events"')
        assert main(["trace-summary", str(truncated)]) == 2
        assert "cannot read" in capsys.readouterr().out


class TestMonitorCli:
    def test_run_monitor_prints_health(self, capsys):
        code = main(
            ["run", "heavy_hitter", "--packets", "300", "--monitor"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "health: ok" in out

    def test_fail_on_violation_fault_free_passes(self, capsys):
        code = main(
            [
                "run", "heavy_hitter", "--packets", "300",
                "--fail-on-violation",
            ]
        )
        assert code == 0
        assert "health: ok" in capsys.readouterr().out

    def test_fail_on_violation_crossbar_fails(self, tmp_path, capsys):
        alerts = tmp_path / "alerts.jsonl"
        code = main(
            [
                "run", "heavy_hitter", "--packets", "300",
                "--faults", "examples/faults/crossbar.json",
                "--alerts-out", str(alerts), "--fail-on-violation",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "health: violated" in out
        assert "first violation: tick" in out
        assert "crossbar" in out
        assert alerts.exists()
        header = json.loads(alerts.read_text().splitlines()[0])
        assert header["verdict"] == "violated"

        assert main(["monitor-report", str(alerts)]) == 0
        report = capsys.readouterr().out
        assert "verdict: violated" in report
        assert "critical" in report

    def test_trace_summary_alerts_section(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        alerts = tmp_path / "alerts.jsonl"
        code = main(
            [
                "run", "heavy_hitter", "--packets", "300",
                "--faults", "examples/faults/crossbar.json",
                "--trace", str(trace), "--trace-format", "jsonl",
                "--alerts-out", str(alerts),
            ]
        )
        assert code == 0
        code = main(
            ["trace-summary", str(trace), "--alerts", str(alerts)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Alerts (" in out
        assert "verdict: violated" in out

    def test_monitor_report_rejects_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["monitor-report", str(empty)]) == 2
        out = capsys.readouterr().out
        assert "cannot read" in out
        assert "Traceback" not in out

    def test_monitor_report_rejects_truncated_file(self, tmp_path, capsys):
        truncated = tmp_path / "alerts.jsonl"
        truncated.write_text('{"format": "mp5-alert-log"')
        assert main(["monitor-report", str(truncated)]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_chaos_table_has_health_column(self, capsys):
        code = main(
            [
                "chaos", "--packets", "200", "--seeds", "1",
                "--intensities", "1.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "health" in out
        assert "ok" in out
