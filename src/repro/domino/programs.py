"""Library of Domino programs used throughout the reproduction.

Contains the paper's running example (Figure 3), the two motivating
examples from §2.3.1, the four real applications evaluated in Figure 8
(flowlet switching, CONGA, WFQ/STFQ priority computation, network
sequencer — re-implemented after the public domino-examples repository),
and a few synthetic programs that exercise specific compiler paths
(stateful predicates, stateful index computation, multi-array stages).

Each entry is plain Domino source text; use :func:`get_program` to parse
and semantically check one by name.
"""

from __future__ import annotations

from typing import Dict, List

from .ast_nodes import Program
from .parser import parse
from .semantic import analyze

# ----------------------------------------------------------------------
# Paper examples
# ----------------------------------------------------------------------

# Figure 3 of the paper, verbatim modulo syntax normalization.
FIGURE3 = """
struct Packet {
    int h1;
    int h2;
    int h3;
    int val;
    int mux;
};

int reg1[4] = {2, 4, 8, 16};
int reg2[4] = {1, 3, 5, 7};
int reg3[4] = {0};

void func(struct Packet p) {
    p.val = (p.mux == 1) ? reg1[p.h1 % 4] : reg2[p.h2 % 4];
    reg3[p.h3 % 4] = (p.mux == 1)
        ? reg3[p.h3 % 4] * p.val
        : reg3[p.h3 % 4] + p.val;
}
"""

# Example 1 (§2.3.1): a global packet counter.
PACKET_COUNTER = """
struct Packet {
    int dummy;
};

int count = 0;

void func(struct Packet p) {
    count = count + 1;
}
"""

# Example 2 (§2.3.1) / Figure 8d: a network sequencer in the style of
# NOPaxos [22] — stamp each packet with a strictly increasing sequence
# number held in a single scalar register.
SEQUENCER = """
struct Packet {
    int seq;
};

int count = 0;

void func(struct Packet p) {
    count = count + 1;
    p.seq = count;
}
"""

# ----------------------------------------------------------------------
# Real applications (Figure 8), after domino-examples
# ----------------------------------------------------------------------

# Flowlet switching [30]: pick a new next hop when the inter-packet gap
# within a flow exceeds the flowlet threshold (IPG > 5 time units here).
# Registers are indexed by a hash of the flow identifier, so addresses
# are preemptively resolvable; the *predicate* reads last_time (stateful)
# so MP5 conservatively generates phantoms for both branches (§3.3).
FLOWLET = """
struct Packet {
    int sport;
    int dport;
    int arrival;
    int new_hop;
    int next_hop;
    int id;
};

int last_time[8000] = {0};
int saved_hop[8000] = {0};

void func(struct Packet p) {
    p.new_hop = hash3(p.sport, p.dport, p.arrival) % 10;
    p.id = hash2(p.sport, p.dport) % 8000;
    if (p.arrival - last_time[p.id] > 5) {
        saved_hop[p.id] = p.new_hop;
    }
    last_time[p.id] = p.arrival;
    p.next_hop = saved_hop[p.id];
}
"""

# CONGA [1] leaf switch: track the best (least utilized) uplink path.
# Both registers are scalars, so they are pinned to a single pipeline;
# line rate is still reachable with realistic packet sizes (§4.4).
CONGA = """
struct Packet {
    int util;
    int path_id;
};

int best_path_util = 100;
int best_path = 0;

void func(struct Packet p) {
    if (p.util < best_path_util) {
        best_path_util = p.util;
        best_path = p.path_id;
    } else {
        if (p.path_id == best_path) {
            best_path_util = p.util;
        }
    }
}
"""

# Weighted fair queueing via start-time fair queueing (STFQ) [32]:
# compute each packet's virtual start time from the per-flow last finish
# time. The register index is a flow hash (stateless), the update is a
# classic read-modify-write.
WFQ = """
struct Packet {
    int sport;
    int dport;
    int length;
    int start;
    int id;
};

int last_finish[4096] = {0};
int virtual_time = 0;

void func(struct Packet p) {
    p.id = hash2(p.sport, p.dport) % 4096;
    p.start = max(virtual_time, last_finish[p.id]);
    last_finish[p.id] = p.start + p.length;
}
"""

# ----------------------------------------------------------------------
# Additional realistic programs
# ----------------------------------------------------------------------

# Heavy-hitter / DDoS detection sketch from the D2 discussion in §3.1:
# per-source packet counters kept in a hashed register table.
HEAVY_HITTER = """
struct Packet {
    int src_ip;
    int hot;
};

int counts[4096] = {0};

void func(struct Packet p) {
    int idx = hash2(p.src_ip, 0) % 4096;
    counts[idx] = counts[idx] + 1;
    p.hot = (counts[idx] > 1000) ? 1 : 0;
}
"""

# A stateful firewall in which only SYN packets touch state: packets in
# an established flow pass statelessly. Exercises the mixed
# stateless/stateful reordering discussion in §3.4.
STATEFUL_FIREWALL = """
struct Packet {
    int src_ip;
    int dst_ip;
    int syn;
    int allowed;
};

int established[2048] = {0};

void func(struct Packet p) {
    int idx = hash2(p.src_ip, p.dst_ip) % 2048;
    if (p.syn == 1) {
        established[idx] = 1;
        p.allowed = 1;
    } else {
        p.allowed = established[idx];
    }
}
"""

# A three-way Bloom filter membership test (after domino-examples
# learn-filter): three register arrays read in the same logical stage.
# Exercises the compiler's multi-array serialization path (§3.3).
BLOOM_FILTER = """
struct Packet {
    int key;
    int member;
};

int filter1[1024] = {0};
int filter2[1024] = {0};
int filter3[1024] = {0};

void func(struct Packet p) {
    int i1 = hash2(p.key, 1) % 1024;
    int i2 = hash2(p.key, 2) % 1024;
    int i3 = hash2(p.key, 3) % 1024;
    p.member = filter1[i1] + filter2[i2] + filter3[i3] == 3 ? 1 : 0;
    filter1[i1] = 1;
    filter2[i2] = 1;
    filter3[i3] = 1;
}
"""

# RCP [14]: accumulate RTT sum and packet count for rate computation.
RCP = """
struct Packet {
    int rtt;
    int size_bytes;
};

int input_traffic_bytes = 0;
int sum_rtt = 0;
int num_pkts_with_rtt = 0;

void func(struct Packet p) {
    input_traffic_bytes = input_traffic_bytes + p.size_bytes;
    if (p.rtt < 30) {
        sum_rtt = sum_rtt + p.rtt;
        num_pkts_with_rtt = num_pkts_with_rtt + 1;
    }
}
"""

# Sampled NetFlow [44]: export every Nth packet (N = 64 here). A single
# global counter decides sampling — stateful on every packet, but the
# packet-size distribution keeps it at line rate in practice (§4.4).
SAMPLED_NETFLOW = """
struct Packet {
    int sampled;
};

int count = 0;

void func(struct Packet p) {
    count = count + 1;
    p.sampled = (count % 64 == 0) ? 1 : 0;
}
"""

# EXPOSURE-style DNS monitoring [8]: count TTL changes per domain to
# spot fast-flux domains. Two arrays share one (stateless) flow index;
# the predicate reads state, so phantoms are conservative.
DNS_TTL_CHANGE = """
struct Packet {
    int domain;
    int ttl;
    int suspicious;
};

int last_ttl[2048] = {0};
int ttl_changes[2048] = {0};

void func(struct Packet p) {
    int idx = hash2(p.domain, 13) % 2048;
    if (last_ttl[idx] != p.ttl) {
        ttl_changes[idx] = ttl_changes[idx] + 1;
    }
    last_ttl[idx] = p.ttl;
    p.suspicious = (ttl_changes[idx] > 16) ? 1 : 0;
}
"""

# A per-flow token-bucket policer: refill by elapsed time, spend one
# token per packet. Classic interdependent two-array stateful program.
TOKEN_BUCKET = """
struct Packet {
    int sport;
    int dport;
    int now;
    int allowed;
};

int tokens[1024] = {8};
int last_seen[1024] = {0};

void func(struct Packet p) {
    int idx = hash2(p.sport, p.dport) % 1024;
    int refill = tokens[idx] + (p.now - last_seen[idx]);
    int capped = min(refill, 8);
    if (capped > 0) {
        p.allowed = 1;
        tokens[idx] = capped - 1;
    } else {
        p.allowed = 0;
        tokens[idx] = capped;
    }
    last_seen[idx] = p.now;
}
"""

# Per-flow EWMA latency estimator (the fixed-point 7/8 filter used by
# TCP RTT estimation): est' = est - est/8 + sample/8.
EWMA_LATENCY = """
struct Packet {
    int flow;
    int sample;
    int estimate;
};

int ewma[1024] = {0};

void func(struct Packet p) {
    int idx = hash2(p.flow, 3) % 1024;
    ewma[idx] = ewma[idx] - (ewma[idx] / 8) + (p.sample / 8);
    p.estimate = ewma[idx];
}
"""

# Adaptive virtual queue (AVQ [20]): maintain a virtual queue drained at
# a fraction of link capacity; mark packets when it builds. Two scalar
# registers whose updates interlock (vq needs last_update's old value) —
# the compiler serializes them into consecutive stages.
AVQ = """
struct Packet {
    int bytes;
    int now;
    int mark;
};

int vq = 0;
int last_update = 0;

void func(struct Packet p) {
    int drained = (p.now - last_update) * 48;
    int level = max(vq - drained, 0) + p.bytes;
    vq = level;
    last_update = p.now;
    p.mark = (level > 30000) ? 1 : 0;
}
"""

# DCTCP-style marking fraction [2]: per-flow EWMA of the fraction of
# ECN-marked packets (alpha), in 1/16 fixed point.
DCTCP_ALPHA = """
struct Packet {
    int flow;
    int ecn;
    int alpha_out;
};

int alpha[1024] = {0};

void func(struct Packet p) {
    int idx = hash2(p.flow, 17) % 1024;
    alpha[idx] = alpha[idx] - (alpha[idx] / 16) + p.ecn;
    p.alpha_out = alpha[idx];
}
"""

# SYN-flood detector: per-destination balance of SYNs vs FINs/RSTs.
SYN_FLOOD = """
struct Packet {
    int dst_ip;
    int syn;
    int fin;
    int under_attack;
};

int balance[2048] = {0};

void func(struct Packet p) {
    int idx = hash2(p.dst_ip, 29) % 2048;
    balance[idx] = balance[idx] + p.syn - p.fin;
    p.under_attack = (balance[idx] > 100) ? 1 : 0;
}
"""

# NetCache-style in-network key-value cache [47]: GETs read the cached
# value and record the hit; PUTs install values. Per-bucket hit counters
# feed cache-admission decisions upstream.
NETCACHE = """
struct Packet {
    int key;
    int is_read;
    int value_in;
    int value_out;
    int cache_hit;
};

int values[2048] = {0};
int valid[2048] = {0};
int hit_count[2048] = {0};

void func(struct Packet p) {
    int idx = hash2(p.key, 5) % 2048;
    if (p.is_read == 1) {
        p.cache_hit = valid[idx];
        p.value_out = values[idx];
        hit_count[idx] = hit_count[idx] + valid[idx];
    } else {
        values[idx] = p.value_in;
        valid[idx] = 1;
    }
}
"""

# ----------------------------------------------------------------------
# Compiler stress programs
# ----------------------------------------------------------------------

# Register index computed from register state: reg's index depends on a
# register read, so the array cannot be sharded (§3.3 fallback).
STATEFUL_INDEX = """
struct Packet {
    int v;
};

int cursor = 0;
int ring[16] = {0};

void func(struct Packet p) {
    ring[cursor % 16] = p.v;
    cursor = cursor + 1;
}
"""

# Stateful predicate guarding a register access with a *different*,
# shardable array: phantoms must be generated for both branches.
STATEFUL_PREDICATE = """
struct Packet {
    int key;
    int out;
};

int mode = 0;
int table_a[256] = {0};
int table_b[256] = {0};

void func(struct Packet p) {
    int idx = hash2(p.key, 7) % 256;
    if (mode == 0) {
        table_a[idx] = table_a[idx] + 1;
        p.out = table_a[idx];
    } else {
        table_b[idx] = table_b[idx] + 2;
        p.out = table_b[idx];
    }
}
"""

# Purely stateless processing: header rewrites only. MP5 sprays these at
# line rate (D1).
STATELESS_REWRITE = """
struct Packet {
    int ttl;
    int dscp;
    int out;
};

void func(struct Packet p) {
    p.ttl = p.ttl - 1;
    p.dscp = (p.dscp & 63) | 64;
    p.out = p.ttl * 2 + p.dscp;
}
"""

PROGRAM_SOURCES: Dict[str, str] = {
    "figure3": FIGURE3,
    "packet_counter": PACKET_COUNTER,
    "sequencer": SEQUENCER,
    "flowlet": FLOWLET,
    "conga": CONGA,
    "wfq": WFQ,
    "heavy_hitter": HEAVY_HITTER,
    "stateful_firewall": STATEFUL_FIREWALL,
    "bloom_filter": BLOOM_FILTER,
    "rcp": RCP,
    "sampled_netflow": SAMPLED_NETFLOW,
    "avq": AVQ,
    "dctcp_alpha": DCTCP_ALPHA,
    "netcache": NETCACHE,
    "dns_ttl_change": DNS_TTL_CHANGE,
    "token_bucket": TOKEN_BUCKET,
    "ewma_latency": EWMA_LATENCY,
    "syn_flood": SYN_FLOOD,
    "stateful_index": STATEFUL_INDEX,
    "stateful_predicate": STATEFUL_PREDICATE,
    "stateless_rewrite": STATELESS_REWRITE,
}


def program_names() -> List[str]:
    """Names of every bundled Domino program."""
    return sorted(PROGRAM_SOURCES)


def get_source(name: str) -> str:
    """Raw Domino source text of a bundled program."""
    try:
        return PROGRAM_SOURCES[name]
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; available: {program_names()}"
        ) from None


def get_program(name: str) -> Program:
    """Parse and semantically check a bundled program by name."""
    program = parse(get_source(name), source_name=name)
    analyze(program)
    return program
