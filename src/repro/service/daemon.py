"""The long-lived MP5 switch daemon.

:class:`SwitchService` wraps one of the three engines in an asyncio
ingestion loop plus the HTTP/JSON control plane of
:mod:`repro.service.http`. Traffic arrives in batches (pushed through
``POST /ingest`` or generated server-side by ``POST /replay``) into a
bounded queue; a single pump task moves batches into the engine and
advances ticks in slices, yielding between slices so control requests
stay responsive. Everything — pump, handlers, replay feeders — runs on
one event loop, so there are no locks and no data races by construction.

**Segments.** The service's unit of execution is a *segment*: one
uninterrupted run of one compiled program on one engine instance.
Control operations that change what the engine is (hot-swapping the
program, attaching/detaching a fault schedule, toggling the monitor,
retuning the remap policy) *quiesce* first — flush the ingest queue,
drain the engine to empty, close the segment — and the next arrival
batch opens a fresh segment under the new configuration. A closed
segment's results are frozen as a canonical JSON payload
(:func:`segment_payload`) that is byte-identical to an offline
``run_mp5``/``run_mp5_vector`` invocation over the same packets, which
is what makes hot swaps testable: served-and-swapped equals two offline
runs split at the swap tick.

**Determinism.** Every engine executes work only once no future
``feed`` can still affect it. The scalar engines execute a tick once it
falls below :attr:`repro.mp5.MP5Switch.ingest_watermark`; the vector
engine services a whole *epoch* once the watermark proves its arrivals
are complete. Both expose the same ``start``/``feed``/``pump``/
``finish`` primitives and the uniform ``work_available(drain)`` probe,
so one adapter drives all three and results are independent of how
arrivals were batched or when control requests interleaved. When the
vector engine cannot run the segment (faults armed, a config knob it
does not model, an unsupported program shape) the adapter falls back
to the fast engine with the same ladder as
:func:`repro.mp5.run_mp5_vector`.

**Backpressure.** The ingest queue holds at most ``queue_depth``
batches. ``POST /ingest`` never blocks: a full queue is answered with
HTTP 429 and the client retries. ``POST /replay`` feeds through an
in-loop task that *awaits* queue space — the generator side of bounded
backpressure.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compiler import compile_program
from ..errors import ConfigError, ReproError
from ..faults import FaultSchedule
from ..mp5 import (
    MP5Config,
    MP5Switch,
    ReferenceSwitch,
    VectorSwitch,
    VectorUnsupported,
)
from ..mp5.packet import DataPacket
from ..mp5.switch import FLOW_ORDER_ARRAY
from ..mp5.vector import _warn_fallback, config_fallback_reason
from ..obs.alerts import SEVERITY_CRITICAL
from ..obs.health import VERDICT_DEGRADED, VERDICT_OK, worst_verdict
from ..obs.metrics import MetricsRegistry
from ..obs.monitor import InvariantMonitor
from ..workloads.traceio import stats_to_dict
from ..workloads.traffic import line_rate_trace

__all__ = [
    "ServiceError",
    "ServiceThread",
    "SwitchService",
    "packet_from_json",
    "random_headers",
    "render_payload",
    "segment_payload",
]

#: Engine ticks executed per pump slice before yielding to the loop.
PUMP_SLICE = 2048

#: Hard cap on packets a single /replay request may schedule.
REPLAY_MAX_PACKETS = 1_000_000


class ServiceError(ReproError):
    """A control-plane request the service rejects; carries the HTTP
    status the control plane should answer with."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def segment_payload(stats, registers) -> Dict:
    """The canonical result of one segment (or one offline run).

    Combines the run summary, the per-reason drop breakdown, and the
    final register state into one JSON-able dict. The served hot-swap
    path and the offline ``run`` path both freeze results through this
    helper, so byte-comparing :func:`render_payload` outputs is the
    equivalence check."""
    return {
        "stats": stats_to_dict(stats),
        "drops_by_reason": {
            k: int(v) for k, v in sorted(stats.drops_by_reason.items())
        },
        "registers": {
            name: [int(v) for v in values]
            for name, values in sorted(registers.items())
        },
    }


def render_payload(payload: Dict) -> str:
    """Deterministic JSON rendering of a segment payload (sorted keys,
    fixed separators) — the byte string ``GET /segments/<i>/results``
    serves."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def random_headers(program):
    """Generic header generator for server-side replay: every packet
    field uniform over a small range (mirrors the CLI smoke-run
    generator)."""
    fields = list(program.packet_fields)

    def gen(rng: np.random.Generator, _i: int):
        return {f: int(rng.integers(0, 256)) for f in fields}

    return gen


def packet_from_json(record: Dict, idx: int = 0) -> DataPacket:
    """One ``/ingest`` packet record → :class:`DataPacket`.

    Schema: ``{"arrival": float, "port": int, "headers": {str: int},
    "size": int = 64, "flow": optional}``. Ids are assigned by the
    engine in arrival order, so the record carries none."""
    try:
        return DataPacket(
            pkt_id=idx,
            arrival=float(record["arrival"]),
            port=int(record.get("port", 0)),
            headers={str(k): int(v) for k, v in record["headers"].items()},
            size_bytes=int(record.get("size", 64)),
            flow_id=record.get("flow"),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ServiceError(f"malformed packet record {record!r}: {exc}") from exc


# ----------------------------------------------------------------------
# Engine adapters: one open segment
# ----------------------------------------------------------------------


class _EngineAdapter:
    """One open segment, any engine, one contract: batches stream in
    through ``feed`` and work advances through ``pump`` only once the
    ingest watermark proves no future feed can affect it — ticks for
    the scalar engines, whole epochs for the vector engine. The vector
    path mirrors :func:`repro.mp5.run_mp5_vector`'s fallback ladder
    (faults armed → warn and use fast; config knob the vector model
    omits → silently use fast; unsupported program shape → warn and
    use fast), so a ``--engine vector`` service is never wedged by a
    mid-stream fault attach — the next segment just runs scalar."""

    streaming = True

    def __init__(self, service: "SwitchService"):
        self.engine, self.switch = self._build_switch(service)
        self.monitor = (
            InvariantMonitor() if service.monitor_enabled else None
        )
        self.metrics = (
            MetricsRegistry(
                window=service.metrics_window,
                retention=service.metrics_retention,
            )
            if service.metrics_enabled
            else None
        )
        if self.monitor is not None or self.metrics is not None:
            self.switch.attach_observability(
                metrics=self.metrics, monitor=self.monitor
            )
        schedule = service.schedule
        if schedule is not None and schedule.faults and self.engine != "vector":
            self.switch.attach_faults(schedule)
        self.switch.start()
        self.offered = 0
        self.first_feed_ts: Optional[float] = None
        self.first_egress_ts: Optional[float] = None

    @staticmethod
    def _build_switch(service: "SwitchService"):
        engine = service.engine
        if engine == "vector":
            schedule = service.schedule
            if schedule is not None and schedule.faults:
                _warn_fallback(
                    "vector engine: faults attached; falling back to the "
                    "fast engine"
                )
            elif config_fallback_reason(service.config) is not None:
                pass  # a config knob, not a surprise: silent fallback
            else:
                try:
                    return "vector", VectorSwitch(
                        service.compiled,
                        service.config,
                        native=service.native,
                        epoch_jobs=service.epoch_jobs,
                    )
                except VectorUnsupported as exc:
                    _warn_fallback(
                        f"vector engine: unsupported program shape ({exc}); "
                        "falling back to the fast engine"
                    )
            engine = "fast"
        cls = ReferenceSwitch if engine == "dense" else MP5Switch
        return engine, cls(service.compiled, service.config)

    @property
    def injector(self):
        return self.switch._faults

    @property
    def tick(self) -> int:
        return self.switch.tick

    @property
    def watermark(self) -> int:
        return self.switch.ingest_watermark

    @property
    def egressed(self) -> int:
        return int(self.switch.stats.egressed)

    @property
    def first_egress_latency(self) -> Optional[float]:
        """Seconds from the segment's first accepted feed to its first
        observed egress — the streaming win the bench measures."""
        if self.first_feed_ts is None or self.first_egress_ts is None:
            return None
        return self.first_egress_ts - self.first_feed_ts

    def feed(self, batch: List[DataPacket]) -> int:
        n = self.switch.feed(batch)
        self.offered += n
        if n and self.first_feed_ts is None:
            self.first_feed_ts = time.monotonic()
        return n

    def runnable(self, drain: bool) -> bool:
        return self.switch.work_available(drain)

    def pump(self, budget: int, drain: bool) -> int:
        sw = self.switch
        until = None if drain else sw.ingest_watermark
        steps = sw.pump(max_steps=budget, until_tick=until)
        if self.first_egress_ts is None and sw.stats.egressed > 0:
            self.first_egress_ts = time.monotonic()
        return steps

    def close(self) -> Tuple[object, Dict[str, List[int]]]:
        stats = self.switch.finish()
        if self.first_egress_ts is None and stats.egressed > 0:
            self.first_egress_ts = time.monotonic()
        registers = {
            name: values
            for name, values in self.switch.registers.items()
            if name != FLOW_ORDER_ARRAY
        }
        return stats, registers

    def stream_stats(self) -> Optional[Dict[str, int]]:
        fn = getattr(self.switch, "stream_stats", None)
        return fn() if fn is not None else None

    def alert_dicts(self) -> List[Dict]:
        return self.monitor.alerts.to_dicts() if self.monitor else []

    def critical_alerts(self) -> int:
        if self.monitor is None:
            return 0
        return len(self.monitor.alerts.by_severity(SEVERITY_CRITICAL))

    def health_report(self):
        return self.monitor.health_report() if self.monitor else None


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------


class SwitchService:
    """One long-lived switch: engine + program + control state.

    Construct, then either ``asyncio.run(service.serve(...))`` (the
    ``serve`` CLI subcommand) or wrap in :class:`ServiceThread` for
    in-process use. All public ``async`` methods must run on the
    service's event loop — the HTTP control plane is the normal caller.
    """

    def __init__(
        self,
        program: Optional[str] = None,
        engine: str = "fast",
        config: Optional[MP5Config] = None,
        queue_depth: int = 8,
        monitor: bool = False,
        faults: Optional[FaultSchedule] = None,
        metrics: bool = True,
        metrics_window: int = 100,
        metrics_retention: Optional[int] = None,
        native: Optional[bool] = None,
        epoch_jobs: Optional[int] = None,
        pump_slice: int = PUMP_SLICE,
        program_name: Optional[str] = None,
    ):
        if engine not in ("fast", "dense", "vector"):
            raise ConfigError(f"unknown engine {engine!r}")
        self.engine = engine
        self.config = config or MP5Config()
        if faults is not None:
            faults.validate(self.config.num_pipelines)
        self.schedule = faults
        self.monitor_enabled = monitor
        self.metrics_enabled = metrics
        self.metrics_window = metrics_window
        if metrics_retention is not None and metrics_retention < 2:
            raise ConfigError("metrics_retention must be >= 2 window rows")
        self.metrics_retention = metrics_retention
        self.native = native
        self.epoch_jobs = epoch_jobs
        self.queue_depth = queue_depth
        self.pump_slice = pump_slice
        if program is None:
            self.compiled = None
        elif isinstance(program, str):
            self.compiled = compile_program(program, name=program_name)
        else:
            # An already-compiled program object (bench harness, tests):
            # skips recompilation and reuses its kernel caches.
            self.compiled = program
        self.program_name = self.compiled.name if self.compiled else None

        self._adapter = None
        self._segments: List[Dict] = []  # public records of closed segments
        self._payloads: List[Dict] = []  # canonical results per segment
        self._alerts: List[Dict] = []  # alerts from closed segments
        self._feed_horizon: Optional[Tuple[float, int]] = None
        self._first_egress_latency: Optional[float] = None
        self._ingested = 0
        self._batches = 0
        self._rejected = 0
        self._paused = False
        self._draining = False
        self._stopping = False
        self._quiesce_waiters: List[asyncio.Future] = []
        self._replay_tasks: set = set()
        self._errors: List[str] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional[asyncio.Queue] = None
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle ------------------------------------------------------

    async def serve(self, host: str = "127.0.0.1", port: int = 8585, ready=None):
        """Run the daemon until shut down: HTTP control plane + pump
        task. ``ready`` (if given) is called with the service once the
        listening address is known."""
        from .http import ControlPlane

        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._wake = asyncio.Event()
        self._shutdown_event = asyncio.Event()
        plane = ControlPlane(self)
        server = await asyncio.start_server(plane.handle, host, port)
        self.address = server.sockets[0].getsockname()[:2]
        pump = asyncio.create_task(self._pump_loop())
        if ready is not None:
            ready(self)
        try:
            await self._shutdown_event.wait()
        finally:
            self._stopping = True
            self._wake.set()
            for task in list(self._replay_tasks):
                task.cancel()
            pump.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await pump
            server.close()
            await server.wait_closed()
            with contextlib.suppress(Exception):
                await plane.drain_streams()

    async def shutdown(self) -> Optional[Dict]:
        """Drain everything (queue and engine), close the open segment,
        then stop the daemon. Returns the final segment record."""
        if self._stopping:
            return None
        for task in list(self._replay_tasks):
            task.cancel()
        record = await self.quiesce()
        self._stopping = True
        self._shutdown_event.set()
        self._wake.set()
        return record

    # -- pump loop ------------------------------------------------------

    async def _pump_loop(self):
        # The wake event is cleared *before* pumping so any event raised
        # mid-pump (ingest, drain request, shutdown) leaves it set and
        # the next wait returns immediately — no lost wakeups.
        while not self._stopping:
            self._wake.clear()
            progressed = self._pump_once()
            if self._draining and not self._has_pending_work():
                self._finish_quiesce()
            if progressed:
                await asyncio.sleep(0)
            else:
                await self._wake.wait()

    def _pump_once(self) -> bool:
        progressed = False
        if self._paused and not self._draining:
            return False
        while self._queue is not None and not self._queue.empty():
            batch = self._queue.get_nowait()
            try:
                self._ensure_adapter().feed(batch)
            except ReproError as exc:  # defensive: horizon check precedes
                self._rejected += len(batch)
                self._errors.append(str(exc))
            else:
                self._ingested += len(batch)
                self._batches += 1
            progressed = True
        ad = self._adapter
        if ad is not None and ad.runnable(self._draining):
            ad.pump(self.pump_slice, self._draining)
            progressed = True
        return progressed

    def _has_pending_work(self) -> bool:
        if self._queue is not None and not self._queue.empty():
            return True
        ad = self._adapter
        return ad is not None and ad.runnable(True)

    def _ensure_adapter(self):
        if self._adapter is None:
            if self.compiled is None:
                raise ServiceError("no program loaded", status=409)
            self._adapter = _EngineAdapter(self)
        return self._adapter

    # -- quiesce and segment close --------------------------------------

    async def quiesce(self) -> Optional[Dict]:
        """Flush the ingest queue, drain the engine dry, close the open
        segment. Returns the closed segment's public record, or None if
        nothing was open. Proceeds even while paused — an explicit drain
        outranks a pause."""
        if self._adapter is None and (self._queue is None or self._queue.empty()):
            return None
        fut = self._loop.create_future()
        self._quiesce_waiters.append(fut)
        self._draining = True
        self._wake.set()
        return await fut

    def _finish_quiesce(self):
        record = None
        try:
            record = self._close_segment()
        except Exception as exc:  # surface engine teardown failures
            self._errors.append(f"segment close failed: {exc}")
            for fut in self._quiesce_waiters:
                if not fut.done():
                    fut.set_exception(
                        ServiceError(f"segment close failed: {exc}", status=500)
                    )
            self._quiesce_waiters.clear()
            self._draining = False
            return
        for fut in self._quiesce_waiters:
            if not fut.done():
                fut.set_result(record)
        self._quiesce_waiters.clear()
        self._draining = False

    def _close_segment(self) -> Optional[Dict]:
        ad = self._adapter
        self._adapter = None
        self._feed_horizon = None
        if ad is None:
            return None
        stats, registers = ad.close()
        if ad.first_egress_latency is not None:
            self._first_egress_latency = ad.first_egress_latency
        payload = segment_payload(stats, registers)
        alerts = ad.alert_dicts()
        report = ad.health_report()
        index = len(self._segments)
        record = {
            "index": index,
            "engine": ad.engine,
            "program": self.program_name,
            "offered": int(stats.offered),
            "egressed": int(stats.egressed),
            "dropped": int(stats.dropped),
            "ticks": int(stats.ticks),
            "drained": bool(
                stats.offered == stats.egressed + stats.dropped
            ),
            "alerts": len(alerts),
            "health": report.to_dict() if report is not None else None,
        }
        self._segments.append(record)
        self._payloads.append(payload)
        self._alerts.extend(alerts)
        return record

    # -- ingestion ------------------------------------------------------

    def ingest(self, records: List[Dict]) -> Dict:
        """Queue one batch of packet records. Bounded: raises 429 when
        the queue is full, 409 when the batch breaks arrival-order
        monotonicity within the open segment."""
        if self.compiled is None:
            raise ServiceError("no program loaded", status=409)
        if not isinstance(records, list) or not records:
            raise ServiceError("ingest expects a non-empty packet list")
        batch = [packet_from_json(r, i) for i, r in enumerate(records)]
        self._enqueue_nowait(batch)
        return {"queued": len(batch), "queue_depth": self._queue.qsize()}

    def _enqueue_nowait(self, batch: List[DataPacket]):
        lo = min((p.arrival, p.port) for p in batch)
        hi = max((p.arrival, p.port) for p in batch)
        if self._feed_horizon is not None and lo < self._feed_horizon:
            self._rejected += len(batch)
            raise ServiceError(
                f"batch starts at (arrival, port) {lo} but the open segment "
                f"already accepted {self._feed_horizon}; arrivals must be "
                "monotone within a segment — drain first to reset the clock",
                status=409,
            )
        try:
            self._queue.put_nowait(batch)
        except asyncio.QueueFull:
            self._rejected += len(batch)
            raise ServiceError(
                f"ingest queue full ({self.queue_depth} batches); "
                "retry after the engine catches up",
                status=429,
            ) from None
        self._feed_horizon = max(self._feed_horizon or lo, hi)
        self._wake.set()

    async def replay(self, spec: Dict) -> Dict:
        """Generate a line-rate trace server-side and feed it through
        the bounded queue (awaiting space — true backpressure)."""
        if self.compiled is None:
            raise ServiceError("no program loaded", status=409)
        try:
            count = int(spec.get("packets", 0))
            chunk = int(spec.get("chunk", 256))
            seed = int(spec.get("seed", 0))
            packet_size = int(spec.get("packet_size", 64))
            utilization = float(spec.get("utilization", 1.0))
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"bad replay spec: {exc}") from exc
        if not 1 <= count <= REPLAY_MAX_PACKETS:
            raise ServiceError(
                f"replay packets must be in [1, {REPLAY_MAX_PACKETS}]"
            )
        if chunk < 1:
            raise ServiceError("replay chunk must be >= 1")
        packets = line_rate_trace(
            count,
            self.config.num_pipelines,
            random_headers(self.compiled),
            packet_size=packet_size,
            seed=seed,
            utilization=utilization,
        )
        lo = (packets[0].arrival, packets[0].port)
        if self._feed_horizon is not None and lo < self._feed_horizon:
            raise ServiceError(
                "replay starts at arrival 0 but the open segment is mid-"
                "stream; drain first to reset the arrival clock",
                status=409,
            )
        task = self._loop.create_task(self._feed_replay(packets, chunk))
        self._replay_tasks.add(task)
        task.add_done_callback(self._replay_tasks.discard)
        return {
            "scheduled": count,
            "chunks": (count + chunk - 1) // chunk,
        }

    async def _feed_replay(self, packets: List[DataPacket], chunk: int):
        for i in range(0, len(packets), chunk):
            part = packets[i : i + chunk]
            await self._queue.put(part)
            hi = (part[-1].arrival, part[-1].port)
            self._feed_horizon = max(self._feed_horizon or hi, hi)
            self._wake.set()

    # -- control operations (each quiesces) -----------------------------

    async def load_program(self, spec: Dict) -> Dict:
        """Compile, optionally validate-only, else hot-swap: drain the
        open segment and install the new program for the next one."""
        source = spec.get("source") or spec.get("program")
        if not source or not isinstance(source, str):
            raise ServiceError(
                "program spec needs 'program' (bundled name) or 'source' "
                "(Domino text)"
            )
        try:
            compiled = compile_program(source, name=spec.get("name"))
        except ReproError as exc:
            raise ServiceError(f"compile failed: {exc}") from exc
        info = {
            "program": compiled.name,
            "stages": compiled.stage_count,
            "fields": sorted(compiled.packet_fields),
        }
        if spec.get("validate_only"):
            return {**info, "validated": True, "swapped": False}
        record = await self.quiesce()
        self.compiled = compiled
        self.program_name = compiled.name
        return {
            **info,
            "swapped": True,
            "closed_segment": record["index"] if record else None,
        }

    async def attach_faults(self, spec: Dict) -> Dict:
        """Validate a fault schedule against the current pipeline count,
        drain, and arm it for the next segment."""
        try:
            if "path" in spec:
                schedule = FaultSchedule.load(spec["path"])
            else:
                schedule = FaultSchedule.from_dict(spec.get("schedule", spec))
            schedule.validate(self.config.num_pipelines)
        except ReproError as exc:
            raise ServiceError(f"bad fault schedule: {exc}") from exc
        record = await self.quiesce()
        self.schedule = schedule
        return {
            "attached": True,
            "faults": len(schedule.faults),
            "closed_segment": record["index"] if record else None,
        }

    async def detach_faults(self) -> Dict:
        record = await self.quiesce()
        had = self.schedule is not None
        self.schedule = None
        return {
            "attached": False,
            "was_attached": had,
            "closed_segment": record["index"] if record else None,
        }

    async def set_monitor(self, enabled: bool) -> Dict:
        record = await self.quiesce()
        self.monitor_enabled = bool(enabled)
        return {
            "monitor": self.monitor_enabled,
            "closed_segment": record["index"] if record else None,
        }

    async def configure(self, spec: Dict) -> Dict:
        """Retune config knobs (remap policy/period and friends): drain,
        then rebuild the config the next segment's engine is built
        with."""
        allowed = {
            "remap_period",
            "remap_algorithm",
            "idle_compression",
            "spray_policy",
            "fifo_capacity",
        }
        unknown = set(spec) - allowed
        if unknown:
            raise ServiceError(
                f"unknown config fields: {', '.join(sorted(unknown))} "
                f"(tunable: {', '.join(sorted(allowed))})"
            )
        if not spec:
            raise ServiceError("empty config update")
        try:
            new_config = dataclasses.replace(self.config, **spec)
        except (ReproError, TypeError, ValueError) as exc:
            raise ServiceError(f"bad config: {exc}") from exc
        record = await self.quiesce()
        self.config = new_config
        return {
            "config": dataclasses.asdict(self.config),
            "closed_segment": record["index"] if record else None,
        }

    async def pause(self) -> Dict:
        self._paused = True
        return {"paused": True}

    async def resume(self) -> Dict:
        self._paused = False
        self._wake.set()
        return {"paused": False}

    # -- read-only views ------------------------------------------------

    def status(self) -> Dict:
        ad = self._adapter
        return {
            "program": self.program_name,
            "engine": self.engine,
            "config": dataclasses.asdict(self.config),
            "monitor": self.monitor_enabled,
            "metrics_retention": self.metrics_retention,
            "faults": len(self.schedule.faults) if self.schedule else 0,
            "paused": self._paused,
            "draining": self._draining,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "queue_capacity": self.queue_depth,
            "ingested": self._ingested,
            "batches": self._batches,
            "rejected": self._rejected,
            "segments": len(self._segments),
            "segment_open": ad is not None,
            "segment": None
            if ad is None
            else {
                "offered": ad.offered,
                "tick": ad.tick,
                "streaming": ad.streaming,
                "engine": ad.engine,
                "watermark": ad.watermark,
                "egressed": ad.egressed,
            },
            "settled": (
                not self._draining
                and (self._queue is None or self._queue.empty())
                and (ad is None or not ad.runnable(False))
            ),
            "errors": list(self._errors[-5:]),
        }

    def health(self) -> Dict:
        """Service health: HealthReport-backed when a monitor is live,
        plus injector phase (active fault windows, pending emergency
        remaps) folded in as ``degraded``."""
        ad = self._adapter
        verdict = VERDICT_OK
        reasons: List[str] = []
        report = None
        if ad is not None:
            rep = ad.health_report()
            if rep is not None:
                report = rep.to_dict()
                verdict = worst_verdict(verdict, rep.verdict)
                if rep.verdict != VERDICT_OK:
                    reasons.append(f"monitor verdict {rep.verdict}")
            inj = ad.injector
            if inj is not None:
                windows = inj.active_windows()
                remaps = inj.pending_remaps()
                if windows:
                    verdict = worst_verdict(verdict, VERDICT_DEGRADED)
                    reasons.append(
                        f"{len(windows)} fault window(s) active: "
                        + ", ".join(
                            f"{w['kind']}@p{w['pipe']}" for w in windows
                        )
                    )
                if remaps:
                    verdict = worst_verdict(verdict, VERDICT_DEGRADED)
                    reasons.append(
                        f"{len(remaps)} emergency remap(s) pending"
                    )
        return {
            "verdict": verdict,
            "reasons": reasons,
            "segment_open": ad is not None,
            "program": self.program_name,
            "engine": self.engine,
            "tick": ad.tick if ad is not None else None,
            "report": report,
            "segments": [
                {
                    "index": rec["index"],
                    "verdict": (rec["health"] or {}).get("verdict", "ok"),
                    "drained": rec["drained"],
                }
                for rec in self._segments
            ],
        }

    def metrics_snapshot(self, since: int = -1) -> Dict:
        ad = self._adapter
        live_alerts = ad.alert_dicts() if ad is not None else []
        latency = (
            ad.first_egress_latency
            if ad is not None and ad.first_egress_latency is not None
            else self._first_egress_latency
        )
        out = {
            "service": {
                "ingested": self._ingested,
                "batches": self._batches,
                "rejected": self._rejected,
                "segments": len(self._segments),
                "alerts_total": len(self._alerts) + len(live_alerts),
                "queue_depth": self._queue.qsize() if self._queue else 0,
                "watermark": ad.watermark if ad is not None else None,
                "first_egress_latency": latency,
            },
            "segment_index": len(self._segments) if ad is not None else None,
            "engine": None,
        }
        if ad is not None:
            stream = ad.stream_stats()
            if stream is not None:
                out["service"]["stream"] = stream
        if ad is not None and ad.metrics is not None:
            out["engine"] = ad.metrics.since(since)
        return out

    def openmetrics(self) -> str:
        """The ``GET /metrics.prom`` document: service-level counters
        plus, when a segment is open with a registry attached, the
        engine's current totals/gauges/summaries — one OpenMetrics text
        exposition any Prometheus-compatible scraper ingests."""
        from ..obs.export import (
            families_from_values,
            render_families,
            render_openmetrics,
        )

        ad = self._adapter
        live_alerts = ad.alert_dicts() if ad is not None else []
        values = {
            "ingested": self._ingested,
            "batches": self._batches,
            "rejected": self._rejected,
            "segments": len(self._segments),
            "alerts": len(self._alerts) + len(live_alerts),
            "queue_depth": self._queue.qsize() if self._queue else 0,
        }
        kinds = {
            "ingested": "counter",
            "batches": "counter",
            "rejected": "counter",
            "segments": "counter",
            "alerts": "counter",
            "queue_depth": "gauge",
        }
        helps = {
            "ingested": "Packets accepted into the ingest queue.",
            "batches": "Ingest batches accepted.",
            "rejected": "Packets rejected (backpressure or ordering).",
            "segments": "Segments closed so far.",
            "alerts": "Alerts raised across all segments.",
            "queue_depth": "Ingest queue occupancy in batches.",
        }
        if ad is not None:
            values["watermark"] = ad.watermark
            kinds["watermark"] = "gauge"
            helps["watermark"] = (
                "Open segment's ingest watermark (ticks proven complete)."
            )
        latency = (
            ad.first_egress_latency
            if ad is not None and ad.first_egress_latency is not None
            else self._first_egress_latency
        )
        if latency is not None:
            values["first_egress_latency_seconds"] = latency
            kinds["first_egress_latency_seconds"] = "gauge"
            helps["first_egress_latency_seconds"] = (
                "Seconds from a segment's first feed to its first egress."
            )
        service = families_from_values(
            values,
            kinds,
            prefix="mp5_service_",
            help_prefix="Service: ",
            helps=helps,
        )
        if ad is not None and ad.metrics is not None:
            return render_openmetrics(ad.metrics, extra_families=service)
        return render_families(service)

    def alerts_window(self, since: int = 0) -> Dict:
        """Since-cursor alert polling: pass back ``cursor`` to receive
        only alerts raised after the previous call."""
        ad = self._adapter
        live = ad.alert_dicts() if ad is not None else []
        merged = self._alerts + live
        if since < 0:
            since = 0
        return {"alerts": merged[since:], "cursor": len(merged)}

    def segments_view(self) -> Dict:
        return {"segments": list(self._segments)}

    def segment_results(self, index: int) -> str:
        if not 0 <= index < len(self._payloads):
            raise ServiceError(f"no such segment {index}", status=404)
        return render_payload(self._payloads[index])


class ServiceThread:
    """Run a :class:`SwitchService` on a background thread (tests and
    in-process embedding). ``start()`` returns the bound ``(host,
    port)``; ``stop()`` drains and joins."""

    def __init__(self, service: SwitchService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="mp5-service", daemon=True
        )

    def _run(self):
        asyncio.run(self.service.serve(self.host, self.port, ready=self._on_ready))

    def _on_ready(self, service: SwitchService):
        self.address = service.address
        self._ready.set()

    def start(self) -> Tuple[str, int]:
        self._thread.start()
        if not self._ready.wait(timeout=15):
            raise RuntimeError("service did not start within 15s")
        return self.address

    def stop(self, timeout: float = 30.0):
        loop = self.service._loop
        if loop is not None and self._thread.is_alive():
            try:
                fut = asyncio.run_coroutine_threadsafe(
                    self.service.shutdown(), loop
                )
                fut.result(timeout=timeout)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        self.start()
        return self

    def __exit__(self, *exc):
        self.stop()
        return False
