"""Structured alerts and the windowed anomaly detector.

An :class:`Alert` is one structured observation about a running switch:
a severity, the tick it fired, the subsystem it concerns, and an
evidence dict with whatever the emitter measured. Alerts accumulate in
an :class:`AlertLog`, which serializes to JSONL (one alert per line
behind a header record) so a chaos sweep can archive the alert stream
of every cell and ``monitor-report`` can render it later.

Severities
----------

* ``info`` — lifecycle bookkeeping (fault windows opening/closing,
  emergency remaps). Never affects the health verdict.
* ``warning`` — statistical anomalies from the detector; the run is
  *degraded* but no invariant is known to be broken.
* ``critical`` — an invariant violation or packet loss; the run is
  *violated* (see :class:`repro.obs.health.HealthReport`).

The :class:`AnomalyDetector` watches the per-window series the
:class:`~repro.obs.metrics.MetricsRegistry` samplers already produce
(the monitor owns a private registry fed by the same switch samplers)
and flags windows whose value departs from an exponentially weighted
moving average by more than ``z_threshold`` standard deviations:

* **throughput collapse** — windowed egress count falls to less than
  ``collapse_fraction`` of its EWMA,
* **drop-rate step** — windowed drop count jumps,
* **remap thrash** — the sharder moves far more indices than usual,
* **phantom-wait spike** — the mean queueing wait of popped packets
  jumps.

All thresholds live on :class:`DetectorConfig`; every decision is a
pure function of the per-window series, so the fast and reference
engines produce byte-identical alert streams.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]

ALERT_FORMAT = "mp5-alert-log"
ALERT_VERSION = 1

SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"
SEVERITIES = (SEVERITY_INFO, SEVERITY_WARNING, SEVERITY_CRITICAL)


@dataclass
class Alert:
    """One structured monitor/detector observation."""

    severity: str
    tick: int
    subsystem: str
    kind: str
    message: str
    invariant: Optional[str] = None
    evidence: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        record = {
            "severity": self.severity,
            "tick": self.tick,
            "subsystem": self.subsystem,
            "kind": self.kind,
            "message": self.message,
            "evidence": self.evidence,
        }
        if self.invariant is not None:
            record["invariant"] = self.invariant
        return record

    @classmethod
    def from_dict(cls, record: Dict) -> "Alert":
        return cls(
            severity=record["severity"],
            tick=record["tick"],
            subsystem=record["subsystem"],
            kind=record["kind"],
            message=record["message"],
            invariant=record.get("invariant"),
            evidence=record.get("evidence", {}),
        )


class AlertLog:
    """Append-only alert stream with JSONL persistence."""

    def __init__(self) -> None:
        self.alerts: List[Alert] = []

    def append(self, alert: Alert) -> Alert:
        self.alerts.append(alert)
        return alert

    def __len__(self) -> int:
        return len(self.alerts)

    def __iter__(self):
        return iter(self.alerts)

    def by_severity(self, severity: str) -> List[Alert]:
        return [a for a in self.alerts if a.severity == severity]

    def to_dicts(self) -> List[Dict]:
        return [a.to_dict() for a in self.alerts]

    def save(self, path: PathLike, meta: Optional[Dict] = None) -> None:
        header = {"format": ALERT_FORMAT, "version": ALERT_VERSION}
        if meta:
            header.update(meta)
        lines = [json.dumps(header)]
        lines.extend(json.dumps(record) for record in self.to_dicts())
        Path(path).write_text("\n".join(lines) + "\n")

    @classmethod
    def load(cls, path: PathLike) -> Tuple[Dict, "AlertLog"]:
        """Read a saved log; raises ``ValueError`` on anything that is
        not a well-formed alert log (empty, truncated, wrong format)."""
        text = Path(path).read_text()
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty alert log (no header line)")
        header = json.loads(lines[0])
        if (
            not isinstance(header, dict)
            or header.get("format") != ALERT_FORMAT
        ):
            raise ValueError(
                f"not an {ALERT_FORMAT} file (bad or missing header)"
            )
        log = cls()
        for line in lines[1:]:
            log.append(Alert.from_dict(json.loads(line)))
        return header, log


# ----------------------------------------------------------------------
# Anomaly detection over the per-window metric series
# ----------------------------------------------------------------------


@dataclass
class DetectorConfig:
    """Tuning knobs of the windowed EWMA/z-score anomaly detector.

    The defaults are deliberately conservative: a healthy fault-free
    run must produce *zero* alerts (the CLI's ``--fail-on-violation``
    and the chaos sweep's health verdicts rely on that), so each rule
    combines the z-score with an absolute floor that windowed noise on
    small workloads cannot reach.
    """

    window: int = 100  # ticks per detector window
    ewma_alpha: float = 0.3  # weight of the newest window
    z_threshold: float = 4.0  # |z| needed to flag a window
    warmup_windows: int = 3  # windows observed before any alert
    min_sd: float = 1.0  # floor on the EWMA standard deviation
    collapse_fraction: float = 0.5  # throughput below this x EWMA
    min_throughput: float = 1.0  # EWMA egress/window worth watching
    min_drop_step: int = 2  # windowed drops needed to flag
    min_remap_moves: int = 8  # windowed index moves needed to flag
    min_wait_spike: float = 2.0  # mean-wait increase (ticks) needed


class _Ewma:
    """EWMA mean/variance tracker for one windowed feature."""

    __slots__ = ("mean", "var", "n", "alpha")

    def __init__(self, alpha: float):
        self.alpha = alpha
        self.mean = 0.0
        self.var = 0.0
        self.n = 0

    def score(self, x: float, min_sd: float) -> float:
        sd = max(math.sqrt(self.var), min_sd)
        return (x - self.mean) / sd

    def update(self, x: float) -> None:
        if self.n == 0:
            self.mean = x
        else:
            a = self.alpha
            self.var = a * (x - self.mean) ** 2 + (1.0 - a) * self.var
            self.mean = a * x + (1.0 - a) * self.mean
        self.n += 1


class AnomalyDetector:
    """EWMA/z-score anomaly rules over the monitor's per-window series.

    ``examine(registry, tick)`` is called by the monitor at every window
    boundary with the registry it feeds; each rule reads the point the
    just-closed window appended and returns the alerts it raised.
    """

    def __init__(self, config: Optional[DetectorConfig] = None):
        self.config = config or DetectorConfig()
        self._trackers: Dict[str, _Ewma] = {}

    def _tracker(self, name: str) -> _Ewma:
        tracker = self._trackers.get(name)
        if tracker is None:
            tracker = self._trackers[name] = _Ewma(self.config.ewma_alpha)
        return tracker

    def _latest(self, registry, name: str, tick: int) -> Optional[float]:
        points = registry.series.get(name)
        if points and points[-1][0] == tick:
            return float(points[-1][1])
        return None

    def examine(self, registry, tick: int) -> List[Alert]:
        cfg = self.config
        alerts: List[Alert] = []

        def rule(
            feature: str,
            value: Optional[float],
            kind: str,
            subsystem: str,
            fires,
            message,
        ) -> None:
            if value is None:
                return
            tracker = self._tracker(feature)
            z = tracker.score(value, cfg.min_sd)
            if tracker.n >= cfg.warmup_windows and fires(value, tracker, z):
                alerts.append(
                    Alert(
                        severity=SEVERITY_WARNING,
                        tick=tick,
                        subsystem=subsystem,
                        kind=kind,
                        message=message(value, tracker),
                        evidence={
                            "window": cfg.window,
                            "value": round(value, 4),
                            "ewma": round(tracker.mean, 4),
                            "z": round(z, 2),
                        },
                    )
                )
            tracker.update(value)

        rule(
            "throughput",
            self._latest(registry, "egressed", tick),
            "throughput_collapse",
            "egress",
            lambda x, t, z: (
                z <= -cfg.z_threshold
                and t.mean >= cfg.min_throughput
                and x < cfg.collapse_fraction * t.mean
            ),
            lambda x, t: (
                f"windowed egress fell to {x:.0f} "
                f"(EWMA {t.mean:.1f} pkts/window)"
            ),
        )
        rule(
            "drops",
            self._latest(registry, "dropped", tick),
            "drop_rate_step",
            "switch",
            lambda x, t, z: z >= cfg.z_threshold and x >= cfg.min_drop_step,
            lambda x, t: (
                f"windowed drops jumped to {x:.0f} "
                f"(EWMA {t.mean:.2f} drops/window)"
            ),
        )
        rule(
            "remap",
            self._latest(registry, "sharder_moves", tick),
            "remap_thrash",
            "sharding",
            lambda x, t, z: z >= cfg.z_threshold and x >= cfg.min_remap_moves,
            lambda x, t: (
                f"sharder moved {x:.0f} indices this window "
                f"(EWMA {t.mean:.2f} moves/window)"
            ),
        )
        waits = registry.histogram_series.get("phantom_wait")
        wait_mean = None
        if waits and waits[-1].get("tick") == tick:
            wait_mean = float(waits[-1]["mean"])
        rule(
            "phantom_wait",
            wait_mean,
            "phantom_wait_spike",
            "phantom_channel",
            lambda x, t, z: (
                z >= cfg.z_threshold and x >= t.mean + cfg.min_wait_spike
            ),
            lambda x, t: (
                f"mean phantom wait rose to {x:.1f} ticks "
                f"(EWMA {t.mean:.2f})"
            ),
        )
        return alerts
