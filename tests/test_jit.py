"""Tests for the TAC-to-Python stage compiler (repro.compiler.jit)."""

import numpy as np
import pytest

from repro.compiler import compile_program, preprocess
from repro.compiler.jit import compile_instrs, compile_program_stages
from repro.compiler.tac import TacEvaluator
from repro.domino import get_program, program_names
from repro.mp5 import MP5Config, run_mp5
from repro.workloads import clone_packets, line_rate_trace

from .test_fuzz_equivalence import FIELDS, random_program
from .test_integration import HEADER_GENERATORS


def run_interpreted(program, headers, registers, env):
    evaluator = TacEvaluator(headers, registers, env)
    for stage in program.stages:
        evaluator.run(stage.instrs)


def run_jitted(program, headers, registers, env, on_access=None):
    for fn in compile_program_stages(program):
        if fn is not None:
            fn(headers, registers, env, on_access)


class TestSemanticEquivalence:
    @pytest.mark.parametrize("name", sorted(program_names()))
    def test_matches_interpreter_on_bundled_programs(self, name):
        program = compile_program(name)
        rng = np.random.default_rng(11)
        gen = HEADER_GENERATORS[name]
        regs_a = program.make_register_store()
        regs_b = program.make_register_store()
        for i in range(40):
            headers = gen(rng, i)
            ha, hb = dict(headers), dict(headers)
            run_interpreted(program, ha, regs_a, {})
            run_jitted(program, hb, regs_b, {})
            assert ha == hb, (name, i)
        assert regs_a == regs_b, name

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_interpreter_on_fuzzed_programs(self, seed):
        rng = np.random.default_rng(seed + 5000)
        program = compile_program(random_program(rng), name=f"jit-fuzz{seed}")
        regs_a = program.make_register_store()
        regs_b = program.make_register_store()
        for i in range(30):
            headers = {f: int(rng.integers(-64, 64)) for f in FIELDS}
            ha, hb = dict(headers), dict(headers)
            run_interpreted(program, ha, regs_a, {})
            run_jitted(program, hb, regs_b, {})
            assert ha == hb
        assert regs_a == regs_b

    def test_access_callback_fires_identically(self):
        program = compile_program("figure3")
        rng = np.random.default_rng(3)
        gen = HEADER_GENERATORS["figure3"]
        for i in range(20):
            headers = gen(rng, i)
            log_a, log_b = [], []
            run_a = TacEvaluator(
                dict(headers),
                program.make_register_store(),
                {},
                on_access=lambda r, x, k: log_a.append((r, x, k)),
            )
            for stage in program.stages:
                run_a.run(stage.instrs)
            run_jitted(
                program,
                dict(headers),
                program.make_register_store(),
                {},
                on_access=lambda r, x, k: log_b.append((r, x, k)),
            )
            assert log_a == log_b

    def test_wrap_semantics_preserved(self):
        source = (
            "struct Packet { int x; int out; };\n"
            "void func(struct Packet p) { p.out = p.x * 2147483647; }"
        )
        program = compile_program(source, name="wrap")
        for x in (-3, -1, 0, 1, 2, 2**30):
            ha = {"x": x, "out": 0}
            hb = dict(ha)
            run_interpreted(program, ha, program.make_register_store(), {})
            run_jitted(program, hb, program.make_register_store(), {})
            assert ha == hb, x

    def test_division_semantics_preserved(self):
        source = (
            "struct Packet { int x; int y; int q; int r; };\n"
            "void func(struct Packet p) { p.q = p.x / p.y; p.r = p.x % p.y; }"
        )
        program = compile_program(source, name="div")
        for x, y in [(-7, 2), (7, -2), (7, 0), (0, 5), (-9, -4)]:
            ha = {"x": x, "y": y, "q": 0, "r": 0}
            hb = dict(ha)
            run_interpreted(program, ha, program.make_register_store(), {})
            run_jitted(program, hb, program.make_register_store(), {})
            assert ha == hb, (x, y)


class TestMechanics:
    def test_empty_stage_compiles_to_none(self):
        assert compile_instrs([]) is None

    def test_generated_source_is_inspectable(self):
        program = compile_program("packet_counter")
        fns = compile_program_stages(program)
        stateful = fns[1]
        assert "registers['count']" in stateful.__doc__ or (
            'registers["count"]' in stateful.__doc__
        )

    def test_cache_shared_across_calls(self):
        program = compile_program("wfq")
        assert program.jit_stage_functions() is program.jit_stage_functions()

    def test_env_carries_temps_across_stages(self):
        program = compile_program("figure3")
        env = {}
        run_jitted(
            program,
            {"h1": 1, "h2": 1, "h3": 2, "mux": 1, "val": 0},
            program.make_register_store(),
            env,
        )
        assert env  # temps published for later stages / diagnostics


class TestEndToEnd:
    def test_switch_results_identical_with_and_without_jit(self):
        program = compile_program("flowlet")
        trace = line_rate_trace(
            600,
            4,
            lambda r, i: {
                "sport": int(r.integers(0, 40)),
                "dport": int(r.integers(0, 40)),
                "arrival": i,
                "new_hop": 0,
                "next_hop": 0,
                "id": 0,
            },
            seed=9,
        )
        stats_a, regs_a = run_mp5(
            program, clone_packets(trace), MP5Config(num_pipelines=4, jit=True)
        )
        stats_b, regs_b = run_mp5(
            program, clone_packets(trace), MP5Config(num_pipelines=4, jit=False)
        )
        assert regs_a == regs_b
        assert stats_a.egress_ticks == stats_b.egress_ticks
        assert stats_a.steering_moves == stats_b.steering_moves
