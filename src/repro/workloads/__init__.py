"""Workload generation: distributions, traffic traces, synthetic programs.

Everything the evaluation (§4.3) feeds the switches: line-rate and
reference traces (the single pipeline runs at k× the MP5 clock, so its
trace times are scaled), web-search flow sizes and bimodal datacenter
packet sizes, uniform/skewed state-access patterns, and the
parameterized synthetic programs behind the Figure 7 sensitivity
sweeps.
"""

from .distributions import (
    WEB_SEARCH_CDF,
    BimodalPacketSizes,
    EmpiricalCDF,
    SkewedAccess,
    UniformAccess,
    web_search_flow_sizes,
    zipf_access,
)
from .synthetic import (
    make_access_pattern,
    make_sensitivity_program,
    sensitivity_trace,
    synthetic_source,
)
from .traceio import (
    load_stats,
    load_trace,
    packet_from_dict,
    packet_to_dict,
    save_stats,
    save_trace,
    stats_to_dict,
)
from .traffic import (
    MIN_PACKET_BYTES,
    Flow,
    FlowWorkload,
    clone_packets,
    line_rate_trace,
    reference_trace,
    variable_size_trace,
)

__all__ = [
    "BimodalPacketSizes",
    "EmpiricalCDF",
    "Flow",
    "FlowWorkload",
    "MIN_PACKET_BYTES",
    "SkewedAccess",
    "UniformAccess",
    "WEB_SEARCH_CDF",
    "clone_packets",
    "line_rate_trace",
    "load_stats",
    "load_trace",
    "packet_from_dict",
    "packet_to_dict",
    "make_access_pattern",
    "make_sensitivity_program",
    "reference_trace",
    "save_stats",
    "save_trace",
    "sensitivity_trace",
    "stats_to_dict",
    "synthetic_source",
    "variable_size_trace",
    "web_search_flow_sizes",
    "zipf_access",
]
