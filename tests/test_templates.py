"""Tests for Banzai atom-template classification and feasibility."""

import pytest

from repro.banzai import (
    AtomTemplate,
    TEMPLATE_BY_NAME,
    check_atom_feasibility,
    classify_cluster,
    classify_program,
)
from repro.compiler import BanzaiTarget, compile_program
from repro.errors import ResourceError


def requirements_of(name):
    return classify_program(compile_program(name).stages)


class TestClassification:
    def test_pure_read_is_read(self):
        (req,) = requirements_of("wfq")[:1]  # virtual_time: read-only
        assert req.template is AtomTemplate.READ

    def test_counter_is_raw(self):
        (req,) = requirements_of("packet_counter")
        assert req.template is AtomTemplate.RAW
        assert req.arrays == ("count",)

    def test_mux_update_is_pred_raw(self):
        reqs = {r.arrays[0]: r for r in requirements_of("figure3")}
        assert reqs["reg3"].template is AtomTemplate.PRED_RAW

    def test_guarded_reads_are_read(self):
        reqs = {r.arrays[0]: r for r in requirements_of("figure3")}
        assert reqs["reg1"].template is AtomTemplate.READ
        assert reqs["reg2"].template is AtomTemplate.READ

    def test_state_comparison_is_if_else_raw(self):
        # established[idx] written when SYN, read otherwise: two-way mux.
        (req,) = requirements_of("stateful_firewall")
        assert req.template in (AtomTemplate.IF_ELSE_RAW, AtomTemplate.SUB)

    def test_fused_arrays_are_paired(self):
        (req,) = requirements_of("conga")
        assert req.template is AtomTemplate.PAIRED
        assert set(req.arrays) == {"best_path", "best_path_util"}

    def test_token_bucket_is_nested_or_sub(self):
        reqs = {r.arrays[0]: r for r in requirements_of("token_bucket")}
        assert reqs["tokens"].template >= AtomTemplate.SUB

    def test_depth_and_alu_counts_positive_for_rmw(self):
        (req,) = requirements_of("heavy_hitter")
        assert req.alu_ops >= 1
        assert req.depth >= 1

    def test_stateless_stage_rejected(self):
        program = compile_program("stateless_rewrite")
        with pytest.raises(ResourceError):
            classify_cluster(program.stages[1].instrs)

    def test_hierarchy_is_ordered(self):
        assert AtomTemplate.READ < AtomTemplate.RAW < AtomTemplate.NESTED
        assert AtomTemplate.PAIRED == max(AtomTemplate)

    def test_registry_names(self):
        assert TEMPLATE_BY_NAME["raw"] is AtomTemplate.RAW
        assert len(TEMPLATE_BY_NAME) == len(AtomTemplate)


class TestFeasibility:
    def test_counter_fits_raw_machine(self):
        compile_program(
            "packet_counter", target=BanzaiTarget(atom_template="raw")
        )

    def test_conga_needs_paired_machine(self):
        with pytest.raises(ResourceError, match="paired"):
            compile_program("conga", target=BanzaiTarget(atom_template="nested"))

    def test_firewall_needs_more_than_raw(self):
        with pytest.raises(ResourceError):
            compile_program(
                "stateful_firewall", target=BanzaiTarget(atom_template="raw")
            )

    def test_default_target_accepts_everything_bundled(self):
        from repro.domino import program_names

        for name in program_names():
            compile_program(name)  # no ResourceError

    def test_unknown_template_rejected(self):
        with pytest.raises(ResourceError, match="unknown atom template"):
            BanzaiTarget(atom_template="quantum")

    def test_check_returns_requirements(self):
        program = compile_program("bloom_filter")
        reqs = check_atom_feasibility(program.stages, AtomTemplate.PAIRED)
        assert len(reqs) == 3
