"""Health verdicts and the per-tick health timeline renderer.

A :class:`HealthReport` folds a run's alert stream plus the monitor's
conservation counters into one verdict:

* ``ok`` — zero warnings, zero criticals (info alerts don't count),
* ``degraded`` — the anomaly detector flagged something but no
  invariant is known broken,
* ``violated`` — at least one critical alert: an invariant check
  failed or a packet was lost.

:func:`render_health_timeline` draws the alert stream as a plain-text
sparkline table (one row per severity, ticks bucketed across the run)
— what the ``monitor-report`` CLI subcommand prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .alerts import (
    Alert,
    SEVERITY_CRITICAL,
    SEVERITY_INFO,
    SEVERITY_WARNING,
)

VERDICT_OK = "ok"
VERDICT_DEGRADED = "degraded"
VERDICT_VIOLATED = "violated"
VERDICTS = (VERDICT_OK, VERDICT_DEGRADED, VERDICT_VIOLATED)

# Sparkline glyphs, blank through full block.
_SPARK = " ▁▂▃▄▅▆▇█"


def worst_verdict(*verdicts: str) -> str:
    """The most severe of the given verdicts (``ok`` < ``degraded`` <
    ``violated``); unknown strings rank as ``violated``."""
    rank = {v: i for i, v in enumerate(VERDICTS)}
    return max(verdicts, key=lambda v: rank.get(v, len(VERDICTS)))


@dataclass
class HealthReport:
    """Aggregated monitor + alert state for one run."""

    verdict: str
    ticks: int
    alerts_total: int
    by_severity: Dict[str, int] = field(default_factory=dict)
    by_kind: Dict[str, int] = field(default_factory=dict)
    violations: Dict[str, int] = field(default_factory=dict)
    first_critical: Optional[Dict] = None
    injected: int = 0
    egressed: int = 0
    dropped: int = 0
    drained: bool = True

    @classmethod
    def from_alerts(
        cls,
        alerts: List[Alert],
        ticks: int = 0,
        violations: Optional[Dict[str, int]] = None,
        injected: int = 0,
        egressed: int = 0,
        dropped: int = 0,
        drained: bool = True,
    ) -> "HealthReport":
        by_severity: Dict[str, int] = {}
        by_kind: Dict[str, int] = {}
        first_critical: Optional[Dict] = None
        for alert in alerts:
            by_severity[alert.severity] = by_severity.get(alert.severity, 0) + 1
            by_kind[alert.kind] = by_kind.get(alert.kind, 0) + 1
            if alert.severity == SEVERITY_CRITICAL and first_critical is None:
                first_critical = alert.to_dict()
        if by_severity.get(SEVERITY_CRITICAL):
            verdict = VERDICT_VIOLATED
        elif by_severity.get(SEVERITY_WARNING):
            verdict = VERDICT_DEGRADED
        else:
            verdict = VERDICT_OK
        return cls(
            verdict=verdict,
            ticks=ticks,
            alerts_total=len(alerts),
            by_severity=by_severity,
            by_kind=by_kind,
            violations=dict(violations or {}),
            first_critical=first_critical,
            injected=injected,
            egressed=egressed,
            dropped=dropped,
            drained=drained,
        )

    @property
    def first_critical_tick(self) -> Optional[int]:
        if self.first_critical is None:
            return None
        return self.first_critical["tick"]

    def to_dict(self) -> Dict:
        return {
            "verdict": self.verdict,
            "ticks": self.ticks,
            "alerts_total": self.alerts_total,
            "by_severity": self.by_severity,
            "by_kind": self.by_kind,
            "violations": self.violations,
            "first_critical": self.first_critical,
            "injected": self.injected,
            "egressed": self.egressed,
            "dropped": self.dropped,
            "drained": self.drained,
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"health: {self.verdict}  "
            f"({self.alerts_total} alerts over {self.ticks} ticks; "
            f"injected={self.injected} egressed={self.egressed} "
            f"dropped={self.dropped})"
        ]
        if self.by_severity:
            parts = [
                f"{severity}={count}"
                for severity, count in sorted(self.by_severity.items())
            ]
            lines.append("  severities: " + " ".join(parts))
        if self.violations:
            parts = [
                f"{name}={count}"
                for name, count in sorted(self.violations.items())
            ]
            lines.append("  violations: " + " ".join(parts))
        if self.first_critical is not None:
            alert = self.first_critical
            what = alert.get("invariant") or alert["kind"]
            lines.append(
                f"  first violation: tick {alert['tick']} — {what}: "
                f"{alert['message']}"
            )
            if alert.get("evidence"):
                lines.append(f"    evidence: {alert['evidence']}")
        return lines


# ----------------------------------------------------------------------
# monitor-report rendering
# ----------------------------------------------------------------------


def spark_row(counts: List[float]) -> str:
    """Render values as a peak-scaled sparkline (shared by
    ``monitor-report`` and the ``repro top`` dashboard)."""
    peak = max(counts)
    if peak == 0:
        return " " * len(counts)
    top = len(_SPARK) - 1
    out = []
    for count in counts:
        # Any nonzero count gets at least the lowest visible glyph.
        level = 0 if count == 0 else max(1, round(count * top / peak))
        out.append(_SPARK[level])
    return "".join(out)


def render_health_timeline(
    alerts: List[Alert],
    ticks: Optional[int] = None,
    width: int = 60,
    max_alerts: int = 20,
) -> str:
    """Plain-text per-tick health timeline for ``monitor-report``.

    One sparkline row per severity, alert ticks bucketed into at most
    ``width`` columns, followed by the first ``max_alerts`` alerts.
    """
    if ticks is None or ticks <= 0:
        ticks = max((a.tick for a in alerts), default=0) + 1
    width = max(1, min(width, ticks))
    span = ticks / width
    lines: List[str] = []
    lines.append(
        f"{len(alerts)} alerts over {ticks} ticks "
        f"({span:.1f} ticks per column)"
    )
    for severity in (SEVERITY_CRITICAL, SEVERITY_WARNING, SEVERITY_INFO):
        counts = [0] * width
        total = 0
        for alert in alerts:
            if alert.severity != severity:
                continue
            bucket = min(int(alert.tick / span), width - 1)
            counts[bucket] += 1
            total += 1
        lines.append(f"{severity:>8} |{spark_row(counts)}| {total}")
    axis = f"tick 0 .. {ticks - 1}"
    lines.append(f"{'':>8} {axis}")
    if alerts:
        lines.append("")
        lines.append(f"first {min(max_alerts, len(alerts))} alerts:")
        header = f"  {'tick':>6}  {'severity':<8}  {'kind':<20}  message"
        lines.append(header)
        for alert in alerts[:max_alerts]:
            lines.append(
                f"  {alert.tick:>6}  {alert.severity:<8}  "
                f"{alert.kind:<20}  {alert.message}"
            )
        if len(alerts) > max_alerts:
            lines.append(f"  ... {len(alerts) - max_alerts} more")
    return "\n".join(lines)
