"""MP5: Stateful Multi-Pipelined Programmable Switches — a reproduction.

This library reimplements the system of *Stateful Multi-Pipelined
Programmable Switches* (Vishal Shrivastav, SIGCOMM 2022): a switch
architecture, compiler, and runtime that make a k-pipelined RMT/Banzai
switch functionally equivalent to a logical single-pipelined switch for
all stateful packet-processing programs while processing packets close
to the ideal rate.

Package map
-----------

* :mod:`repro.domino` — the Domino language frontend (lexer, parser,
  semantics) and a library of bundled programs.
* :mod:`repro.compiler` — preprocessing (three-address code), pipelining
  (PVSM), MP5's PVSM-to-PVSM transformer (preemptive address
  resolution), and Banzai code generation.
* :mod:`repro.banzai` — the single-pipeline RMT substrate and the
  functional-equivalence reference switch.
* :mod:`repro.mp5` — the MP5 switch: crossbar steering, phantom packets,
  per-stage FIFOs, dynamic state sharding, and the cycle-level engine.
* :mod:`repro.baselines` — the designs MP5 is evaluated against.
* :mod:`repro.workloads` — traffic and access-pattern generation.
* :mod:`repro.apps` — the real applications of the paper's evaluation.
* :mod:`repro.asic` — analytic area/clock/SRAM models (Table 1).
* :mod:`repro.equivalence` — the functional-equivalence checker.
* :mod:`repro.harness` — drivers that regenerate every table and figure.

Quickstart
----------

    from repro.compiler import compile_program
    from repro.mp5 import MP5Config, run_mp5
    from repro.equivalence import check_equivalence
    from repro.workloads import line_rate_trace

    program = compile_program("heavy_hitter")
    trace = line_rate_trace(
        5000, 4, lambda rng, i: {"src_ip": int(rng.integers(0, 512)), "hot": 0}
    )
    report = check_equivalence(program, trace, MP5Config(num_pipelines=4))
    assert report.equivalent and report.c1_fraction == 0.0
"""

from . import analysis, apps, asic, banzai, baselines, compiler, domino, equivalence
from . import harness, mp5, workloads
from .compiler import BanzaiTarget, CompiledProgram, compile_program
from .equivalence import check_equivalence
from .errors import (
    CompilerError,
    ConfigError,
    DominoError,
    DominoSemanticError,
    DominoSyntaxError,
    EquivalenceError,
    ReproError,
    ResourceError,
    SimulationError,
    TransformError,
)
from .mp5 import MP5Config, MP5Switch, run_mp5

__version__ = "1.0.0"

__all__ = [
    "BanzaiTarget",
    "CompiledProgram",
    "CompilerError",
    "ConfigError",
    "DominoError",
    "DominoSemanticError",
    "DominoSyntaxError",
    "EquivalenceError",
    "MP5Config",
    "MP5Switch",
    "ReproError",
    "ResourceError",
    "SimulationError",
    "TransformError",
    "analysis",
    "apps",
    "asic",
    "banzai",
    "baselines",
    "check_equivalence",
    "compile_program",
    "compiler",
    "domino",
    "equivalence",
    "harness",
    "mp5",
    "run_mp5",
    "workloads",
]
