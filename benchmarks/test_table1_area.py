"""Table 1 (§4.2): chip area, clock speed, and SRAM overhead.

Regenerates every (k, s) cell of Table 1 from the analytic model and
checks the paper's claims: every configuration meets 1 GHz, area grows
linearly in stages and quadratically in pipelines, the 4x16
configuration costs only 0.5-1% of a commercial ASIC, and the sharding
metadata is ~35 KB of SRAM per pipeline.
"""

import pytest

from repro.asic import (
    chip_area,
    chip_area_mm2,
    model_error_vs_paper,
    sram_overhead_paper_example,
)
from repro.harness import render_table1, run_table1

from conftest import run_once


def test_table1_area_and_clock(benchmark, show):
    cells = run_once(benchmark, run_table1)
    show(render_table1(cells))

    assert len(cells) == 12
    # Claim 1: clock target met everywhere.
    assert all(c.meets_1ghz for c in cells)
    # Claim 2: model tracks the published table.
    assert max(model_error_vs_paper().values()) < 0.05
    # Claim 3: linear in stages...
    by_ks = {(c.pipelines, c.stages): c.area_mm2 for c in cells}
    for k in (2, 4, 8):
        assert by_ks[(k, 8)] == pytest.approx(2 * by_ks[(k, 4)], rel=0.01)
        assert by_ks[(k, 16)] == pytest.approx(4 * by_ks[(k, 4)], rel=0.01)
    # ... and quadratic in pipelines.
    for s in (4, 8, 12, 16):
        assert 3.0 < by_ks[(4, s)] / by_ks[(2, s)] < 5.0
        assert 3.0 < by_ks[(8, s)] / by_ks[(4, s)] < 5.0


def test_table1_overhead_vs_commercial_asic(benchmark):
    breakdown = run_once(benchmark, lambda: chip_area(4, 16))
    # §4.2: "the total area overhead for 4 pipelines and 16 stages is
    # only 3.36 mm^2 ... 0.5-1% overhead" against 300-700 mm^2 ASICs.
    assert breakdown.total_mm2 == pytest.approx(3.36, rel=0.05)
    assert 0.004 <= breakdown.total_mm2 / 700 <= 0.011
    assert 0.004 <= breakdown.total_mm2 / 300 <= 0.012
    # Doubling to 8 pipelines: still 2-4% for 16 stages.
    eight = chip_area_mm2(8, 16)
    assert 0.018 <= eight / 700 and eight / 300 <= 0.045


def test_table1_sram_overhead(benchmark):
    report = run_once(benchmark, sram_overhead_paper_example)
    # "the total SRAM overhead only comes to about 35 KB per pipeline"
    assert 33 <= report.kilobytes <= 38
    # "quite nominal given ... 50-100 MB of SRAM"
    assert report.fraction_of_switch_sram(50 * 1024 * 1024) < 0.001
