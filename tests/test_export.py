"""OpenMetrics exposition, series retention, and the top dashboard.

Three contracts from the streaming-telemetry layer:

* **exposition** — :func:`render_openmetrics` output round-trips through
  the validating line parser with the expected family types and values,
  and rendering is a pure function of the registry (byte-determinism);
* **retention** — a capped registry bounds its in-memory rows with
  deterministic thinning that never drops the newest window, while
  ``since()`` (bisect cursor) stays equivalent to a full-history scan;
* **dashboard** — ``repro top --once`` against recorded
  ``metrics.json``/``alerts.jsonl`` artifacts renders byte-identically
  across runs, as does the ``export-metrics`` converter.
"""

import pytest

from repro.cli import main
from repro.obs.export import (
    families_from_snapshot,
    load_metrics_document,
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.top import TopModel, render_top_frame


def build_registry(
    rolls: int = 12, window: int = 10, retention=None
) -> MetricsRegistry:
    """A registry exercising every instrument kind, rolled ``rolls``
    times with a deterministic workload."""
    registry = MetricsRegistry(window=window, retention=retention)
    egressed = {"n": 0}
    registry.add_sampler("egressed", lambda: egressed["n"], cumulative=True)
    registry.add_sampler("queue_depth.p0.s1", lambda: egressed["n"] % 7)
    registry.add_sampler("queue_depth.p1.s0", lambda: egressed["n"] % 3)
    drops = registry.counter("dropped")
    depth = registry.gauge("queue_depth_max")
    latency = registry.histogram("latency")
    for i in range(rolls * window):
        egressed["n"] += 2
        if i % 17 == 0:
            drops.inc()
        depth.set(i % 9)
        latency.observe(float(i % 31))
        registry.maybe_roll(i)
    registry.roll(rolls * window)
    return registry


class TestSanitize:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("egressed", "egressed"),
            ("queue_depth.p0.s1", "queue_depth_p0_s1"),
            ("weird-name!", "weird_name_"),
            ("9lives", "_9lives"),
            ("", "_"),
        ],
    )
    def test_mapping(self, raw, expected):
        assert sanitize_metric_name(raw) == expected

    def test_stable(self):
        assert sanitize_metric_name("a.b") == sanitize_metric_name("a.b")


class TestExposition:
    def test_round_trips_through_parser(self):
        registry = build_registry()
        families = parse_openmetrics(render_openmetrics(registry))
        assert families["mp5_egressed"]["type"] == "counter"
        assert families["mp5_dropped"]["type"] == "counter"
        assert families["mp5_queue_depth_max"]["type"] == "gauge"
        assert families["mp5_latency"]["type"] == "summary"
        # Counters expose the running total with the _total suffix.
        (sample,) = families["mp5_egressed"]["samples"]
        assert sample[0] == "_total"
        assert sample[2] == registry.totals()["egressed"]

    def test_lane_series_fold_into_labels(self):
        families = parse_openmetrics(render_openmetrics(build_registry()))
        samples = families["mp5_queue_depth"]["samples"]
        labels = sorted(lbls for _suffix, lbls, _v in samples)
        assert labels == [
            (("pipe", "0"), ("stage", "1")),
            (("pipe", "1"), ("stage", "0")),
        ]

    def test_summary_carries_quantiles_count_and_sum(self):
        registry = build_registry()
        families = parse_openmetrics(render_openmetrics(registry))
        by_suffix = {}
        for suffix, labels, value in families["mp5_latency"]["samples"]:
            by_suffix.setdefault(suffix, []).append((labels, value))
        hist = registry.histograms["latency"]
        assert by_suffix["_count"] == [((), hist.total_count)]
        assert by_suffix["_sum"][0][1] == pytest.approx(hist.total_sum)
        quantiles = {labels[0][1] for labels, _v in by_suffix[""]}
        assert quantiles == {"0.5", "0.99"}

    def test_every_family_has_help_and_eof(self):
        text = render_openmetrics(build_registry())
        assert text.endswith("# EOF\n")
        for family, parsed in parse_openmetrics(text).items():
            assert parsed["help"], f"{family} missing HELP"

    def test_rendering_is_byte_deterministic(self):
        assert render_openmetrics(build_registry()) == render_openmetrics(
            build_registry()
        )

    def test_snapshot_dict_renders_like_live_registry(self):
        registry = build_registry()
        assert render_openmetrics(registry.to_dict()) == render_openmetrics(
            registry
        )

    def test_pre_kinds_document_renders_unknown(self):
        doc = build_registry().to_dict()
        del doc["kinds"]
        families = parse_openmetrics(render_openmetrics(doc))
        assert families["mp5_egressed"]["type"] == "unknown"


class TestParserRejects:
    def test_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE a counter\na_total 1\n")

    def test_content_after_eof(self):
        with pytest.raises(ValueError, match="after # EOF"):
            parse_openmetrics("# EOF\nx 1\n")

    def test_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_openmetrics(
                "# TYPE a counter\n# TYPE a counter\n# EOF\n"
            )

    def test_sample_outside_family(self):
        with pytest.raises(ValueError, match="does not group"):
            parse_openmetrics("# TYPE a counter\nb 1\n# EOF\n")

    def test_bad_label_syntax(self):
        with pytest.raises(ValueError, match="label"):
            parse_openmetrics('# TYPE a gauge\na{pipe=0} 1\n# EOF\n')

    def test_bad_value(self):
        with pytest.raises(ValueError, match="value"):
            parse_openmetrics("# TYPE a gauge\na one\n# EOF\n")


class TestRetention:
    def test_rows_bounded(self):
        capped = build_registry(rolls=200, retention=16)
        for rows in capped.series.values():
            assert len(rows) <= 16
        for rows in capped.histogram_series.values():
            assert len(rows) <= 16
        assert capped.rows_retained() <= 16 * (
            len(capped.series) + len(capped.histogram_series)
        )

    def test_newest_window_always_kept(self):
        full = build_registry(rolls=200)
        capped = build_registry(rolls=200, retention=8)
        for name, rows in full.series.items():
            assert capped.series[name][-1] == rows[-1]

    def test_thinning_deterministic(self):
        a = build_registry(rolls=100, retention=8)
        b = build_registry(rolls=100, retention=8)
        assert a.series == b.series
        assert a.histogram_series == b.histogram_series

    def test_retained_rows_are_a_subsequence(self):
        full = build_registry(rolls=120)
        capped = build_registry(rolls=120, retention=8)
        for name, rows in capped.series.items():
            full_ticks = [row[0] for row in full.series[name]]
            ticks = [row[0] for row in rows]
            assert ticks == sorted(ticks)
            assert set(ticks) <= set(full_ticks)

    def test_totals_unaffected_by_retention(self):
        assert (
            build_registry(rolls=150, retention=4).totals()
            == build_registry(rolls=150).totals()
        )

    def test_retention_validation(self):
        with pytest.raises(ValueError):
            MetricsRegistry(retention=1)


class TestSinceCursor:
    def test_bisect_matches_linear_filter(self):
        registry = build_registry(rolls=30)
        ticks = sorted({row[0] for row in registry.series["egressed"]})
        probes = [-1, 0, ticks[0], ticks[3], ticks[-2], ticks[-1], 10**9]
        for probe in probes:
            view = registry.since(probe)
            for name, rows in registry.series.items():
                expected = [row for row in rows if row[0] > probe]
                assert view["series"][name] == expected
            for name, rows in registry.histogram_series.items():
                expected = [row for row in rows if row["tick"] > probe]
                assert view["histograms"][name] == expected

    def test_cursor_chain_reconstructs_history(self):
        registry = build_registry(rolls=20)
        # Poll in chunks: replaying the cursor chain yields every row.
        cursor, seen = -1, []
        rows = registry.series["egressed"]
        for probe in [row[0] for row in rows[::4]] + [rows[-1][0]]:
            view = {
                name: [r for r in series if cursor < r[0] <= probe]
                for name, series in registry.series.items()
            }
            seen.extend(view["egressed"])
            cursor = probe
        assert seen == rows


class TestOfflineArtifacts:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        alerts = tmp_path / "alerts.jsonl"
        assert (
            main(
                [
                    "run",
                    "heavy_hitter",
                    "--packets",
                    "400",
                    "--metrics",
                    str(metrics),
                    "--metrics-window",
                    "25",
                    "--alerts-out",
                    str(alerts),
                ]
            )
            == 0
        )
        return metrics, alerts

    def test_export_metrics_cli_parses(self, artifacts, capsys):
        metrics, _alerts = artifacts
        capsys.readouterr()
        assert main(["export-metrics", str(metrics)]) == 0
        families = parse_openmetrics(capsys.readouterr().out)
        assert families["mp5_egressed"]["samples"][0][2] == 400

    def test_export_metrics_cli_out_file(self, artifacts, tmp_path, capsys):
        metrics, _alerts = artifacts
        out = tmp_path / "metrics.prom"
        assert main(["export-metrics", str(metrics), "--out", str(out)]) == 0
        assert "# EOF" in out.read_text()

    def test_export_metrics_rejects_non_document(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("[1, 2, 3]")
        assert main(["export-metrics", str(bogus)]) == 2

    def test_export_matches_offline_renderer(self, artifacts, capsys):
        metrics, _alerts = artifacts
        capsys.readouterr()
        assert main(["export-metrics", str(metrics)]) == 0
        doc = load_metrics_document(metrics)
        assert capsys.readouterr().out == render_openmetrics(doc)
        assert families_from_snapshot(doc)  # non-empty family list

    def test_top_once_byte_identical(self, artifacts, capsys):
        metrics, alerts = artifacts
        capsys.readouterr()
        argv = [
            "top",
            "--once",
            "--metrics",
            str(metrics),
            "--alerts-log",
            str(alerts),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "\x1b" not in first  # --once never emits ANSI clears
        assert "throughput" in first
        assert "verdict ok" in first

    def test_top_renders_lane_sparklines(self, artifacts, capsys):
        metrics, alerts = artifacts
        capsys.readouterr()
        assert (
            main(["top", "--once", "--metrics", str(metrics)]) == 0
        )
        out = capsys.readouterr().out
        assert "queue p0" in out
        assert "queue p3" in out


class TestTopModel:
    def test_incremental_frames_merge_without_duplicates(self):
        registry = build_registry(rolls=6)
        model = TopModel(width=32)
        rows = registry.series["egressed"]
        split = rows[2][0]
        first = {
            "segment_index": 0,
            "engine": {
                "window": registry.window,
                "series": {"egressed": [r for r in rows if r[0] <= split]},
                "totals": {},
            },
        }
        second = {
            "segment_index": 0,
            "engine": {
                "window": registry.window,
                "series": {"egressed": rows},  # overlaps the first frame
                "totals": {},
            },
        }
        model.apply_metrics(first)
        model.apply_metrics(second)
        assert model.series["egressed"] == rows

    def test_segment_change_resets_series(self):
        model = TopModel()
        model.apply_metrics(
            {
                "segment_index": 0,
                "engine": {"window": 10, "series": {"egressed": [[10, 1]]}},
            }
        )
        model.apply_metrics(
            {
                "segment_index": 1,
                "engine": {"window": 10, "series": {"egressed": [[10, 5]]}},
            }
        )
        assert model.series["egressed"] == [[10, 5]]

    def test_render_has_no_wall_clock_state(self):
        model = TopModel()
        assert render_top_frame(model) == render_top_frame(model)
