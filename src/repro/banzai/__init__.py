"""Banzai RMT substrate: atoms, match tables, registers, single pipeline.

Banzai [Sivaraman et al., SIGCOMM 2016] models stateful packet processing
on RMT switches; the paper's functional-equivalence target (§2.2) is a
single Banzai pipeline running at full line rate. This package provides
that reference switch plus the building blocks (atoms, registers, match
tables) the MP5 multi-pipeline simulator reuses per stage.
"""

from .atoms import Atom
from .control import AuditRecord, ControlPlane, deploy_wildcard_control
from .match_table import MatchEntry, MatchTable
from .pipeline import (
    BanzaiPipeline,
    BanzaiStageUnit,
    PipelinePacket,
    RunResult,
    run_reference,
)
from .registers import RegisterFile
from .templates import (
    AtomRequirement,
    AtomTemplate,
    TEMPLATE_BY_NAME,
    check_atom_feasibility,
    classify_cluster,
    classify_program,
)

__all__ = [
    "Atom",
    "AtomRequirement",
    "AuditRecord",
    "ControlPlane",
    "deploy_wildcard_control",
    "AtomTemplate",
    "TEMPLATE_BY_NAME",
    "check_atom_feasibility",
    "classify_cluster",
    "classify_program",
    "BanzaiPipeline",
    "BanzaiStageUnit",
    "MatchEntry",
    "MatchTable",
    "PipelinePacket",
    "RegisterFile",
    "RunResult",
    "run_reference",
]
