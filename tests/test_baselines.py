"""Tests for the baseline switch designs."""

import pytest

from repro.baselines import (
    RecircConfig,
    RecirculationSwitch,
    make_single_pipeline_state_switch,
    no_phantom_config,
    run_recirculation,
    run_single_pipeline_state,
    static_shard_config,
)
from repro.compiler import compile_program
from repro.errors import ConfigError
from repro.mp5 import MP5Config
from repro.workloads import (
    clone_packets,
    line_rate_trace,
    make_sensitivity_program,
    sensitivity_trace,
)

from .conftest import heavy_hitter_headers


class TestConfigs:
    def test_static_shard_config(self):
        cfg = static_shard_config(num_pipelines=8)
        assert cfg.remap_algorithm == "none"
        assert cfg.initial_shard == "random"

    def test_no_phantom_config(self):
        cfg = no_phantom_config(num_pipelines=8)
        assert not cfg.enable_phantoms

    def test_recirc_config_validation(self):
        with pytest.raises(ConfigError):
            RecircConfig(num_pipelines=0)
        with pytest.raises(ConfigError):
            RecircConfig(num_pipelines=8, num_ports=4)
        with pytest.raises(ConfigError):
            RecircConfig(recirc_latency=-1)


class TestSinglePipelineState:
    def test_all_state_on_pipeline_zero(self, heavy_hitter_program):
        switch = make_single_pipeline_state_switch(
            heavy_hitter_program, MP5Config(num_pipelines=4)
        )
        mapping = switch.sharder.arrays["counts"].index_to_pipeline
        assert (mapping == 0).all()

    def test_throughput_caps_at_one_over_k(self, heavy_hitter_program):
        trace = line_rate_trace(1200, 4, heavy_hitter_headers, seed=0)
        stats, _ = run_single_pipeline_state(
            heavy_hitter_program, trace, MP5Config(num_pipelines=4)
        )
        assert stats.throughput_normalized() == pytest.approx(0.25, abs=0.03)

    def test_still_functionally_correct(self, sequencer_program):
        trace = line_rate_trace(200, 4, lambda r, i: {"seq": 0}, seed=0)
        packets = clone_packets(trace)
        stats, registers = run_single_pipeline_state(
            sequencer_program, packets, MP5Config(num_pipelines=4)
        )
        assert registers["count"][0] == 200

    def test_remap_never_spreads_pinned_state(self, heavy_hitter_program):
        trace = line_rate_trace(800, 4, heavy_hitter_headers, seed=0)
        switch = make_single_pipeline_state_switch(
            heavy_hitter_program, MP5Config(num_pipelines=4, remap_period=20)
        )
        switch.run(trace)
        assert (switch.sharder.arrays["counts"].index_to_pipeline == 0).all()


class TestRecirculation:
    def _program_and_trace(self, n=800, k=4, seed=0):
        program = make_sensitivity_program(4, 64)
        trace = sensitivity_trace(n, k, 4, 64, pattern="uniform", seed=seed)
        return program, trace

    def test_static_port_mapping(self):
        program, _ = self._program_and_trace()
        switch = RecirculationSwitch(program, RecircConfig(num_pipelines=4))
        assert switch._pipe_of_port(0) == 0
        assert switch._pipe_of_port(15) == 0
        assert switch._pipe_of_port(16) == 1
        assert switch._pipe_of_port(63) == 3

    def test_recirculations_counted(self):
        program, trace = self._program_and_trace()
        stats, switch = run_recirculation(
            program, trace, RecircConfig(num_pipelines=4)
        )
        # Four accesses spread over four pipelines: most packets need
        # several passes.
        assert switch.avg_recirculations > 1.0

    def test_throughput_well_below_mp5(self):
        from repro.mp5 import run_mp5

        program, trace = self._program_and_trace()
        recirc_stats, _ = run_recirculation(
            program, clone_packets(trace), RecircConfig(num_pipelines=4)
        )
        mp5_stats, _ = run_mp5(
            program, clone_packets(trace), MP5Config(num_pipelines=4)
        )
        assert (
            recirc_stats.throughput_normalized()
            < 0.6 * mp5_stats.throughput_normalized()
        )

    def test_all_packets_complete_eventually(self):
        program, trace = self._program_and_trace(n=300)
        stats, _ = run_recirculation(program, trace, RecircConfig(num_pipelines=4))
        assert stats.egressed == stats.offered

    def test_register_final_state_correct_for_commutative_updates(self):
        # Counter increments commute, so even the re-circulating switch
        # converges to the right totals (it is the ORDER it breaks).
        program, trace = self._program_and_trace(n=200)
        switch = RecirculationSwitch(program, RecircConfig(num_pipelines=4))
        switch.run(trace)
        total = sum(sum(switch.registers[f"reg{i}"]) for i in range(4))
        assert total == 200 * 4

    def test_single_pipeline_recirc_needs_no_recirculation(self):
        program, trace = self._program_and_trace(k=1)
        stats, switch = run_recirculation(
            program, trace, RecircConfig(num_pipelines=1)
        )
        assert switch.total_recirculations == 0
        assert stats.egressed == stats.offered

    def test_access_order_violations_observed(self):
        from repro.banzai import run_reference
        from repro.mp5 import c1_metrics
        from repro.workloads import reference_trace

        program, trace = self._program_and_trace(n=600)
        reference = run_reference(program, reference_trace(trace, 4))
        stats, _ = run_recirculation(
            program,
            clone_packets(trace),
            RecircConfig(num_pipelines=4),
            record_access_order=True,
        )
        report = c1_metrics(reference.access_order, stats.access_order, len(trace))
        assert report.inversion_fraction > 0.0

    def test_max_ticks_truncates(self):
        program, trace = self._program_and_trace(n=500)
        stats, _ = run_recirculation(
            program, trace, RecircConfig(num_pipelines=4), max_ticks=30
        )
        assert stats.ticks == 30
