"""Trace and result serialization.

Experiments become reproducible artifacts: packet traces round-trip
through JSON (or JSON-lines for large traces) and run statistics export
to a flat JSON document. The format is deliberately simple — one object
per packet with its arrival time, port, size, flow and headers — so
external tools (or a future hardware harness) can produce compatible
traces.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from ..errors import ConfigError
from ..mp5.packet import DataPacket
from ..mp5.stats import SwitchStats

TRACE_FORMAT_VERSION = 1

PathLike = Union[str, Path]


def packet_to_dict(pkt: DataPacket) -> Dict:
    record = {
        "id": pkt.pkt_id,
        "arrival": pkt.arrival,
        "port": pkt.port,
        "size": pkt.size_bytes,
        "headers": dict(pkt.headers),
    }
    if pkt.flow_id is not None:
        record["flow"] = pkt.flow_id
    return record


def packet_from_dict(record: Dict) -> DataPacket:
    try:
        return DataPacket(
            pkt_id=int(record["id"]),
            arrival=float(record["arrival"]),
            port=int(record["port"]),
            headers={str(k): int(v) for k, v in record["headers"].items()},
            size_bytes=int(record.get("size", 64)),
            flow_id=record.get("flow"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed trace record {record!r}: {exc}") from exc


def save_trace(packets: Iterable[DataPacket], path: PathLike) -> int:
    """Write a trace as JSON lines; returns the packet count.

    The first line is a header object carrying the format version.
    """
    path = Path(path)
    count = 0
    with path.open("w") as fh:
        fh.write(json.dumps({"format": "mp5-trace", "version": TRACE_FORMAT_VERSION}))
        fh.write("\n")
        for pkt in packets:
            fh.write(json.dumps(packet_to_dict(pkt)))
            fh.write("\n")
            count += 1
    return count


def load_trace(path: PathLike) -> List[DataPacket]:
    """Read a trace written by :func:`save_trace`."""
    path = Path(path)
    packets: List[DataPacket] = []
    with path.open() as fh:
        header_line = fh.readline()
        if not header_line:
            raise ConfigError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("format") != "mp5-trace":
            raise ConfigError(f"{path}: not an mp5-trace file")
        if header.get("version") != TRACE_FORMAT_VERSION:
            raise ConfigError(
                f"{path}: unsupported trace version {header.get('version')}"
            )
        for line in fh:
            line = line.strip()
            if line:
                packets.append(packet_from_dict(json.loads(line)))
    return packets


def stats_to_dict(stats: SwitchStats, include_distributions: bool = False) -> Dict:
    """Flatten run statistics for export. Distributions (latencies,
    egress times) are large; opt in via ``include_distributions``."""
    record = dict(stats.summary())  # includes the per-reason drop breakdown
    if include_distributions:
        record["latencies"] = list(stats.latencies)
        record["egress_ticks"] = list(stats.egress_ticks)
    return record


def save_stats(
    stats: SwitchStats, path: PathLike, include_distributions: bool = False
) -> None:
    Path(path).write_text(
        json.dumps(stats_to_dict(stats, include_distributions), indent=2)
    )


def load_stats(path: PathLike) -> Dict:
    return json.loads(Path(path).read_text())
