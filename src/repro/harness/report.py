"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table (the shape the paper's tables use)."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in rendered_rows:
        out.append(line(row))
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def ascii_chart(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
    max_value: float = 1.0,
) -> str:
    """Render a horizontal bar chart in plain text.

    Used by the CLI to sketch the Figure 7/8 curves without a plotting
    dependency; ``max_value`` anchors the full bar (1.0 = line rate).
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    top = max(max_value, max(values, default=0.0)) or 1.0
    label_width = max((len(str(lbl)) for lbl in labels), default=0)
    lines = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / top))
        lines.append(f"{str(label).rjust(label_width)} |{bar.ljust(width)}| {value:.3f}")
    return "\n".join(lines)
