"""The fused native kernel tier must be invisible in the results.

:mod:`repro.compiler.lower` flattens a stage's TAC into SSA;
:mod:`repro.compiler.native` emits one fused per-row kernel per stage
from that SSA (Numba-jitted when Numba is importable, plain Python
otherwise). The admission contract mirrors the vector engine's: any
stage outside the envelope raises :class:`NativeUnsupported` and the
engine silently keeps its NumPy path — so for every (program, trace,
config), ``native=True`` must reproduce the plain vector run (and thus
the fast engine) bit for bit, with or without Numba installed.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.compiler import compile_program
from repro.compiler.lower import lower_stage
from repro.compiler.native import (
    NativeUnsupported,
    compile_native_stage,
    native_available,
    native_unavailable_reason,
)
from repro.domino import get_program
from repro.mp5 import ENGINES, MP5Config
from repro.mp5.epochs import resolve_native_mode
from repro.workloads import line_rate_trace
from repro.workloads.synthetic import make_sensitivity_program, sensitivity_trace

from tests.test_fuzz_equivalence import FIELDS, random_program


def _headers_for(program):
    fields = list(program.packet_fields)

    def gen(rng, _i):
        return {f: int(rng.integers(0, 64)) for f in fields}

    return gen


def _run(engine_kwargs, program, trace_factory, config=None, max_ticks=None):
    stats, regs = ENGINES["vector"](
        program, trace_factory(), config, max_ticks=max_ticks, **engine_kwargs
    )
    return stats, regs


def _assert_native_matches(program, trace_factory, config=None, max_ticks=None):
    base_stats, base_regs = _run({}, program, trace_factory, config, max_ticks)
    nat_stats, nat_regs = _run(
        {"native": True}, program, trace_factory, config, max_ticks
    )
    assert nat_stats == base_stats
    assert nat_regs == base_regs


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _sensitivity_switch():
    from repro.mp5.vector import VectorSwitch

    return VectorSwitch(make_sensitivity_program(4, 64))


def test_lowering_is_deterministic():
    switch = _sensitivity_switch()
    for stage, instrs in enumerate(switch._stage_instrs):
        a = lower_stage(instrs, f"s{stage}")
        b = lower_stage(instrs, f"s{stage}")
        if a is None:
            assert b is None
            continue
        assert [s.render() for s in a.stmts] == [s.render() for s in b.stmts]
        assert a.temps_in == b.temps_in
        assert a.temps_out == b.temps_out
        assert a.regs == b.regs


def test_native_compile_source_is_deterministic():
    switch = _sensitivity_switch()
    compiled = 0
    for stage, instrs in enumerate(switch._stage_instrs):
        if not instrs:
            continue
        try:
            k1 = compile_native_stage(instrs, f"s{stage}", force_python=True)
            k2 = compile_native_stage(instrs, f"s{stage}", force_python=True)
        except NativeUnsupported:
            continue
        assert k1.source == k2.source
        compiled += 1
    assert compiled > 0  # the sensitivity program is inside the envelope


def test_builtin_call_stage_rejected():
    """Stages containing builtin CALLs (hash2 etc.) are outside the
    fused-kernel envelope and must raise, not miscompile."""
    from repro.mp5.vector import VectorSwitch

    program = compile_program(get_program("flowlet"))
    switch = VectorSwitch(program)
    saw_reject = False
    for stage, instrs in enumerate(switch._stage_instrs):
        if not instrs:
            continue
        try:
            compile_native_stage(instrs, f"s{stage}", force_python=True)
        except NativeUnsupported:
            saw_reject = True
    assert saw_reject  # flowlet's resolution stage hashes the flow key


# ---------------------------------------------------------------------------
# Gating without Numba
# ---------------------------------------------------------------------------


def test_native_mode_resolution():
    assert resolve_native_mode(None) == "off"
    assert resolve_native_mode(False) == "off"
    expected = "njit" if native_available() else "python"
    assert resolve_native_mode(True) == expected


def test_unavailable_reason_consistent():
    if native_available():
        assert native_unavailable_reason() is None
    else:
        reason = native_unavailable_reason()
        assert reason and "numba" in reason.lower()


def test_python_tier_kernel_runs():
    """force_python compiles and executes without Numba present."""
    switch = _sensitivity_switch()
    for stage, instrs in enumerate(switch._stage_instrs):
        if not instrs:
            continue
        try:
            kern = compile_native_stage(instrs, f"s{stage}", force_python=True)
        except NativeUnsupported:
            continue
        assert not kern.jitted
        assert callable(kern.fn)
        return
    pytest.fail("no stage compiled")


# ---------------------------------------------------------------------------
# Differential: native on vs off
# ---------------------------------------------------------------------------


def test_native_matches_sensitivity():
    program = make_sensitivity_program(4, 128)
    _assert_native_matches(
        program, lambda: sensitivity_trace(2500, 4, 4, 128, seed=3)
    )


@pytest.mark.parametrize("app_name", sorted(ALL_APPS))
def test_native_matches_real_apps(app_name):
    app = ALL_APPS[app_name]
    program = app.compile()
    _assert_native_matches(
        program,
        lambda: app.workload(1200, 4, seed=1),
        MP5Config(num_pipelines=4),
    )


@pytest.mark.parametrize("seed", range(6))
def test_native_matches_fuzzed_programs(seed):
    rng = np.random.default_rng(900 + seed)
    source = random_program(rng)
    program = compile_program(source)
    fields = list(FIELDS)

    def gen(r, _i):
        return {f: int(r.integers(0, 32)) for f in fields}

    _assert_native_matches(
        program,
        lambda: line_rate_trace(800, 4, gen, seed=seed),
        MP5Config(num_pipelines=4, seed=seed),
    )


@pytest.mark.parametrize("pipelines", (1, 2, 4))
def test_native_matches_across_pipeline_counts(pipelines):
    program = make_sensitivity_program(2, 64)
    _assert_native_matches(
        program,
        lambda: sensitivity_trace(1500, pipelines, 2, 64, seed=5),
        MP5Config(num_pipelines=pipelines),
    )
