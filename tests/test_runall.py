"""Tests for the one-shot reproduction orchestrator."""

import json

import pytest

from repro.harness import run_all
from repro.harness.runall import SCALES, _observability_run


class TestRunAll:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("results")
        messages = []
        artifacts = run_all(
            out_dir=str(out), scale="tiny", progress=messages.append
        )
        return out, artifacts, messages

    def test_all_artifacts_present(self, artifacts):
        _out, rendered, _messages = artifacts
        assert set(rendered) == {
            "table1",
            "microbench",
            "fig7a",
            "fig7b",
            "fig7c",
            "fig7d",
            "fig8",
        }

    def test_files_written(self, artifacts):
        out, rendered, _messages = artifacts
        for name in rendered:
            assert (out / f"{name}.txt").exists()
        assert (out / "results.json").exists()

    def test_structured_results_parse(self, artifacts):
        out, _rendered, _messages = artifacts
        data = json.loads((out / "results.json").read_text())
        assert data["scale"] == "tiny"
        assert len(data["table1"]) == 12
        assert len(data["fig7a"]) == 5
        assert set(data["fig8"]) == {"flowlet", "conga", "wfq", "sequencer"}

    def test_progress_reported(self, artifacts):
        _out, _rendered, messages = artifacts
        assert any("Table 1" in m for m in messages)
        assert any("Figure 8" in m for m in messages)

    def test_rendered_tables_contain_numbers(self, artifacts):
        _out, rendered, _messages = artifacts
        assert "1 GHz" in rendered["table1"]
        assert "pipelines" in rendered["fig7a"]
        assert "D4" in rendered["microbench"]

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            run_all(scale="huge")

    def test_scales_defined(self):
        assert set(SCALES) == {"tiny", "small", "full", "large", "xlarge"}
        # large is the vector-engine tier: 50k packets, multi-seed,
        # with the (scalar-only) microbenchmarks kept at a smaller
        # stream so they don't dominate the wall clock.
        assert SCALES["large"]["engine"] == "vector"
        assert SCALES["large"]["micro_packets"] < SCALES["large"]["num_packets"]
        # xlarge is the million-packet native tier; the Figure 7 sweeps
        # stay at 50k (their cost scales with the pipeline sweep).
        assert SCALES["xlarge"]["engine"] == "vector"
        assert SCALES["xlarge"]["native"] is True
        assert (
            SCALES["xlarge"]["sensitivity_packets"]
            < SCALES["xlarge"]["num_packets"]
        )

    def test_no_observability_key_by_default(self, artifacts):
        # observe=False must leave results.json unchanged so serial and
        # parallel runs stay byte-identical with earlier releases.
        out, _rendered, _messages = artifacts
        data = json.loads((out / "results.json").read_text())
        assert "observability" not in data

    def test_observe_requires_out_dir(self):
        with pytest.raises(ValueError):
            run_all(scale="tiny", observe=True)


class TestObservabilityRun:
    def test_artifacts_written(self, tmp_path):
        record = _observability_run(tmp_path, {"num_packets": 200})
        for key in ("trace", "trace_jsonl", "metrics", "trace_summary"):
            assert (tmp_path / record[key]).exists()
        assert record["events"] > 0
        doc = json.loads((tmp_path / record["trace"]).read_text())
        types = {
            r["name"] for r in doc["traceEvents"] if r.get("ph") != "M"
        }
        assert len(types) >= 8
        summary_text = (tmp_path / record["trace_summary"]).read_text()
        assert "Top phantom-wait stalls" in summary_text
