"""Analytical cross-validation: throughput bounds and queueing models."""

from .queueing import (
    ArrayBound,
    array_throughput_bound,
    fundamental_limit,
    md1_mean_in_system,
    md1_mean_queue,
    md1_mean_wait,
    program_throughput_bound,
    scalar_state_limit,
)

__all__ = [
    "ArrayBound",
    "array_throughput_bound",
    "fundamental_limit",
    "md1_mean_in_system",
    "md1_mean_queue",
    "md1_mean_wait",
    "program_throughput_bound",
    "scalar_state_limit",
]
