"""Idle-tick compression must be semantically invisible.

``MP5Config.idle_compression`` lets the scalar engines teleport the
tick counter across stretches where no stage holds live work and the
next arrival is known. The contract: statistics and registers are
identical with the optimization on or off (the teleport only skips
ticks that would have been pure no-ops), remap boundaries still fire,
and the optimization disengages entirely whenever faults or any
observability sink is attached — those consumers observe per-tick
state, so skipping ticks would change what they see.
"""

import json
from pathlib import Path

import pytest

from repro.faults import FaultSchedule
from repro.mp5 import (
    MP5Config,
    MP5Switch,
    ReferenceSwitch,
    run_mp5,
    run_mp5_reference,
)
from repro.obs import InvariantMonitor
from repro.workloads.synthetic import make_sensitivity_program, sensitivity_trace

FAULT_DIR = Path("examples/faults")

ENGINES = {"fast": run_mp5, "dense": run_mp5_reference}
SWITCHES = {"fast": MP5Switch, "dense": ReferenceSwitch}


def _schedule(kind: str, num_packets: int = 150, seed: int = 0):
    """A trace whose arrivals leave long idle stretches.

    ``bursty``: tight clumps separated by ~40-tick gaps. ``sparse``:
    one packet every ~150 ticks, with fractional arrivals mixed in so
    the ceil-to-next-tick path is exercised too.
    """
    trace = sensitivity_trace(num_packets, 4, 4, 64, seed=seed)
    for i, pkt in enumerate(trace):
        if kind == "bursty":
            pkt.arrival = float((i // 10) * 40 + (i % 10))
        else:
            pkt.arrival = i * 150 + (0.5 if i % 3 else 0.0)
    return trace


CONFIG_VARIANTS = {
    "default": dict(),
    "remap_none": dict(remap_algorithm="none"),
    "short_remap": dict(remap_period=7),
    "flow_order": dict(flow_order_field="f0"),
    "tiny_fifo": dict(fifo_capacity=2),
    "phantom_loss": dict(phantom_loss_rate=0.3),
}


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("kind", ("bursty", "sparse"))
@pytest.mark.parametrize("variant", sorted(CONFIG_VARIANTS))
def test_compression_invisible(engine, kind, variant):
    """Stats, registers, and the JSON-rendered summary are identical
    with compression on and off, on both scalar engines."""
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    results = {}
    for enabled in (True, False):
        config = MP5Config(
            num_pipelines=4,
            idle_compression=enabled,
            **CONFIG_VARIANTS[variant],
        )
        stats, regs = ENGINES[engine](
            program, _schedule(kind), config, max_ticks=60000
        )
        results[enabled] = (stats, regs)
    on_stats, on_regs = results[True]
    off_stats, off_regs = results[False]
    assert on_stats == off_stats
    assert on_regs == off_regs
    # results.json fidelity: the summary serializes identically too.
    assert json.dumps(on_stats.summary()) == json.dumps(off_stats.summary())


@pytest.mark.parametrize("engine", sorted(SWITCHES))
@pytest.mark.parametrize("kind", ("bursty", "sparse"))
def test_compression_engages_and_preserves_tick_count(engine, kind):
    """On gappy schedules the teleport must actually fire, and the
    final tick count must equal the uncompressed run's."""
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    on = SWITCHES[engine](
        program, MP5Config(num_pipelines=4, idle_compression=True)
    )
    on_stats = on.run(_schedule(kind))
    off = SWITCHES[engine](
        program, MP5Config(num_pipelines=4, idle_compression=False)
    )
    off_stats = off.run(_schedule(kind))
    assert on._idle_teleports > 0
    assert off._idle_teleports == 0
    assert on_stats.ticks == off_stats.ticks


def test_compression_off_by_flag():
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    switch = MP5Switch(
        program, MP5Config(num_pipelines=4, idle_compression=False)
    )
    switch.run(_schedule("sparse"))
    assert switch._idle_teleports == 0


def test_dense_line_rate_never_teleports():
    """At line rate there is no idle stretch to compress; the flag must
    not perturb a busy switch."""
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    switch = MP5Switch(program, MP5Config(num_pipelines=4))
    switch.run(sensitivity_trace(200, 4, 4, 64, seed=0))
    assert switch._idle_teleports == 0


def _fault_schedules():
    paths = sorted(FAULT_DIR.glob("*.json"))
    assert len(paths) == 7, "examples/faults/ schedule set changed"
    return paths


@pytest.mark.parametrize(
    "path", _fault_schedules(), ids=lambda p: p.stem
)
def test_compression_auto_disables_under_faults(path):
    """Every bundled fault schedule pins the switch to real per-tick
    stepping, even on a sparse trace that would otherwise teleport."""
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    switch = MP5Switch(program, MP5Config(num_pipelines=4))
    switch.attach_faults(FaultSchedule.load(str(path)))
    switch.run(_schedule("sparse", num_packets=40), max_ticks=20000)
    assert switch._idle_teleports == 0


def test_compression_auto_disables_under_monitor():
    program = make_sensitivity_program(num_stateful=4, register_size=64)
    switch = MP5Switch(program, MP5Config(num_pipelines=4))
    switch.attach_observability(monitor=InvariantMonitor())
    switch.run(_schedule("sparse", num_packets=40))
    assert switch._idle_teleports == 0
