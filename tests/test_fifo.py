"""Tests for the per-stage FIFO groups (push/insert/pop, §3.2)."""

import pytest

from repro.errors import ConfigError
from repro.mp5 import DataPacket, IdealOrderBuffer, PhantomPacket, StageFifoGroup


def data(pkt_id):
    return DataPacket(pkt_id=pkt_id, arrival=0.0, port=0, headers={})


def phantom(pkt_id, array="r", index=0):
    return PhantomPacket(
        pkt_id=pkt_id, array=array, index=index, pipeline=0, stage=1, created_tick=0
    )


class TestPush:
    def test_push_and_pop_data(self):
        fifo = StageFifoGroup(num_pipelines=2)
        fifo.push(data(1), fifo_id=0, tick=0)
        popped = fifo.pop()
        assert popped.pkt_id == 1

    def test_pop_empty_returns_none(self):
        fifo = StageFifoGroup(num_pipelines=2)
        assert fifo.pop() is None

    def test_capacity_drop(self):
        fifo = StageFifoGroup(num_pipelines=1, capacity=2)
        assert fifo.push(data(1), 0, 0)
        assert fifo.push(data(2), 0, 0)
        assert not fifo.push(data(3), 0, 0)
        assert fifo.drops_full == 1

    def test_capacity_per_ring_buffer(self):
        fifo = StageFifoGroup(num_pipelines=2, capacity=1)
        assert fifo.push(data(1), 0, 0)
        assert fifo.push(data(2), 1, 0)  # different ring buffer
        assert not fifo.push(data(3), 0, 0)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            StageFifoGroup(num_pipelines=0)
        with pytest.raises(ConfigError):
            StageFifoGroup(num_pipelines=1, capacity=0)

    def test_occupancy_tracking(self):
        fifo = StageFifoGroup(num_pipelines=2)
        fifo.push(data(1), 0, 0)
        fifo.push(data(2), 1, 0)
        assert fifo.occupancy() == 2
        assert fifo.peak_occupancy == 2
        fifo.pop()
        assert fifo.occupancy() == 1
        assert fifo.peak_occupancy == 2


class TestLogicalFifoOrder:
    def test_pop_takes_oldest_across_buffers(self):
        fifo = StageFifoGroup(num_pipelines=2)
        fifo.push(data(1), 1, 0)  # pushed first -> older timestamp
        fifo.push(data(2), 0, 0)
        assert fifo.pop().pkt_id == 1
        assert fifo.pop().pkt_id == 2

    def test_fifo_order_within_buffer(self):
        fifo = StageFifoGroup(num_pipelines=1)
        for i in range(5):
            fifo.push(data(i), 0, i)
        assert [fifo.pop().pkt_id for _ in range(5)] == [0, 1, 2, 3, 4]


class TestPhantomProtocol:
    def test_phantom_head_blocks_pop(self):
        fifo = StageFifoGroup(num_pipelines=1)
        fifo.push(phantom(1), 0, 0)
        fifo.push(data(2), 0, 1)
        assert fifo.pop() is None  # blocked by the placeholder

    def test_insert_replaces_phantom_in_place(self):
        fifo = StageFifoGroup(num_pipelines=1)
        fifo.push(phantom(1), 0, 0)
        fifo.push(data(2), 0, 1)
        assert fifo.insert(data(1), tick=2)
        first = fifo.pop()
        assert first.pkt_id == 1  # data packet took the phantom's position
        assert fifo.pop().pkt_id == 2

    def test_insert_without_phantom_drops(self):
        fifo = StageFifoGroup(num_pipelines=1)
        assert not fifo.insert(data(9), tick=0)
        assert fifo.drops_no_phantom == 1

    def test_phantom_blocking_across_buffers(self):
        fifo = StageFifoGroup(num_pipelines=2)
        fifo.push(phantom(1), 0, 0)  # oldest overall
        fifo.push(data(2), 1, 1)
        assert fifo.pop() is None
        fifo.insert(data(1), tick=2)
        assert fifo.pop().pkt_id == 1
        assert fifo.pop().pkt_id == 2

    def test_ordering_preserved_through_replacement(self):
        # Phantoms pushed in arrival order; data packets arrive out of
        # order but pops follow phantom (arrival) order.
        fifo = StageFifoGroup(num_pipelines=1)
        for i in range(3):
            fifo.push(phantom(i), 0, i)
        fifo.insert(data(2), tick=10)
        fifo.insert(data(0), tick=11)
        fifo.insert(data(1), tick=12)
        assert [fifo.pop().pkt_id for _ in range(3)] == [0, 1, 2]

    def test_expire_phantom_unblocks(self):
        fifo = StageFifoGroup(num_pipelines=1)
        fifo.push(phantom(1), 0, 0)
        fifo.push(data(2), 0, 1)
        assert fifo.expire_phantom(1)
        assert fifo.pop().pkt_id == 2

    def test_expire_missing_phantom_false(self):
        fifo = StageFifoGroup(num_pipelines=1)
        assert not fifo.expire_phantom(42)

    def test_head_data_age(self):
        fifo = StageFifoGroup(num_pipelines=1)
        fifo.push(data(1), 0, 5)
        assert fifo.head_data_age(tick=9) == 4

    def test_head_data_age_none_for_phantom(self):
        fifo = StageFifoGroup(num_pipelines=1)
        fifo.push(phantom(1), 0, 0)
        assert fifo.head_data_age(tick=3) is None

    def test_data_occupancy_excludes_phantoms(self):
        fifo = StageFifoGroup(num_pipelines=1)
        fifo.push(phantom(1), 0, 0)
        fifo.push(data(2), 0, 0)
        assert fifo.data_occupancy() == 1


class TestIdealOrderBuffer:
    def test_no_hol_blocking_across_indexes(self):
        buf = IdealOrderBuffer(num_pipelines=2)
        buf.push(phantom(1, index=0), 0, 0)  # index 0 waits for its data
        buf.push(phantom(2, index=1), 0, 1)
        buf.insert(data(2), tick=2)
        popped = buf.pop()
        assert popped.pkt_id == 2  # index 1 proceeds despite index 0

    def test_per_index_order_enforced(self):
        buf = IdealOrderBuffer(num_pipelines=1)
        buf.push(phantom(1, index=0), 0, 0)
        buf.push(phantom(2, index=0), 0, 1)
        buf.insert(data(2), tick=2)
        assert buf.pop() is None  # same index: packet 2 must wait for 1
        buf.insert(data(1), tick=3)
        assert buf.pop().pkt_id == 1
        assert buf.pop().pkt_id == 2

    def test_oldest_ready_index_wins(self):
        buf = IdealOrderBuffer(num_pipelines=1)
        buf.push(phantom(1, index=0), 0, 0)
        buf.push(phantom(2, index=1), 0, 1)
        buf.insert(data(1), tick=2)
        buf.insert(data(2), tick=2)
        assert buf.pop().pkt_id == 1

    def test_data_push_rejected(self):
        buf = IdealOrderBuffer(num_pipelines=1)
        with pytest.raises(ConfigError):
            buf.push(data(1), 0, 0)

    def test_expire_phantom(self):
        buf = IdealOrderBuffer(num_pipelines=1)
        buf.push(phantom(1, index=0), 0, 0)
        buf.push(phantom(2, index=0), 0, 1)
        buf.expire_phantom(1)
        buf.insert(data(2), tick=2)
        assert buf.pop().pkt_id == 2

    def test_insert_without_phantom_drops(self):
        buf = IdealOrderBuffer(num_pipelines=1)
        assert not buf.insert(data(5), tick=0)
        assert buf.drops_no_phantom == 1

    def test_occupancy(self):
        buf = IdealOrderBuffer(num_pipelines=1)
        buf.push(phantom(1, index=0), 0, 0)
        assert buf.occupancy() == 1
        assert buf.data_occupancy() == 0
