"""Process-parallel execution of independent simulation tasks.

Every harness sweep (Figure 7, Figure 8, ``run_all``) is a list of
fully independent simulations: one (parameter value, seed) pair per
task, with no shared mutable state. :func:`parallel_map` fans such a
task list out over a :class:`~concurrent.futures.ProcessPoolExecutor`
and returns results **in task order**, so callers aggregate exactly as
the serial loop would and the rendered artifacts (``results.json``
included) are byte-identical at any job count.

Determinism contract for task functions:

* the task tuple carries everything that varies — in particular the RNG
  seed — so a task's result depends only on its arguments, never on
  which worker ran it or in what order;
* task functions and their arguments must be picklable (module-level
  functions, plain data).

``jobs`` semantics, shared by every harness entry point:

* ``None`` or ``1`` — serial, in-process (the default; zero overhead,
  bit-for-bit the historical behavior);
* ``0`` — one worker per CPU (:func:`default_jobs`);
* ``n > 1`` — ``n`` worker processes.

If a pool cannot be created or breaks mid-run (sandboxed environments
forbidding ``fork``, worker OOM-kills), the sweep transparently falls
back to the serial path rather than failing the reproduction run. A
pool that never managed to run anything marks the environment as
pool-hostile, so a multi-sweep reproduction pays the doomed spawn
attempt once, not once per figure panel; a pool that breaks after
having delivered results is assumed transient and re-created for the
next sweep (``shutdown_pool`` resets both states).
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

# One lazily-created pool per process, reused across sweeps so workers
# pay the interpreter + import startup cost once per reproduction run,
# not once per figure panel.
_pool: Optional[ProcessPoolExecutor] = None
_pool_jobs: int = 0
# True once the cached pool has completed a map: a failure on a proven
# pool is transient (worker OOM-kill) and worth retrying next sweep; a
# failure before any success means the environment cannot spawn
# workers at all, and retrying would pay the doomed spawn attempt once
# per sweep family.
_pool_proven: bool = False
# Memoized "this environment cannot run a pool": later sweep families
# skip straight to the serial path. Cleared by shutdown_pool().
_pool_unavailable: bool = False


def default_jobs() -> int:
    """Worker count used for ``jobs=0``: one per available CPU."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` argument to an effective worker count."""
    if jobs is None:
        return 1
    if jobs == 0:
        return default_jobs()
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    global _pool, _pool_jobs, _pool_proven
    if _pool is not None and _pool_jobs != jobs:
        _pool.shutdown(wait=False)
        _pool = None
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=jobs)
        _pool_jobs = jobs
        _pool_proven = False
    return _pool


def shutdown_pool() -> None:
    """Tear down the cached worker pool (idempotent; re-created lazily).

    Also clears the memoized pool-unavailable verdict, so a caller that
    knows the environment changed can force a fresh spawn attempt.
    """
    global _pool, _pool_proven, _pool_unavailable
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
    _pool_proven = False
    _pool_unavailable = False


def _discard_pool() -> None:
    """Drop a broken pool without waiting on its (dead) workers.

    A pool that broke before ever finishing a map means the environment
    cannot spawn workers (sandbox forbidding ``fork``); memoize that so
    subsequent sweep families go straight to the serial path instead of
    repeating the doomed spawn attempt once per family.
    """
    global _pool, _pool_unavailable
    if not _pool_proven:
        _pool_unavailable = True
    if _pool is not None:
        _pool.shutdown(wait=False)
        _pool = None


atexit.register(shutdown_pool)


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    jobs: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to every task, returning results in task order.

    Runs serially for ``jobs`` in (None, 1) or when there is at most one
    task; otherwise distributes over the shared process pool. Any pool
    failure (creation or mid-run) falls back to recomputing the whole
    task list serially — correct because tasks are pure functions of
    their arguments.
    """
    global _pool_proven
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1 or _pool_unavailable:
        return [fn(task) for task in tasks]
    # Chunk so each worker round-trip amortizes pickling over several
    # tasks; cap at 4 waves per worker to keep the tail balanced.
    chunksize = max(1, len(tasks) // (jobs * 4))
    try:
        pool = _get_pool(jobs)
        results = list(pool.map(fn, tasks, chunksize=chunksize))
        _pool_proven = True
        return results
    except (BrokenProcessPool, OSError, PermissionError, RuntimeError):
        _discard_pool()
        return [fn(task) for task in tasks]
