"""Hand-written lexer for the Domino language subset.

The lexer produces a flat list of :class:`~repro.domino.tokens.Token`
objects, skipping whitespace and both ``//`` line comments and
``/* ... */`` block comments.
"""

from __future__ import annotations

from typing import List

from ..errors import DominoSyntaxError
from .tokens import (
    KEYWORDS,
    ONE_CHAR_OPERATORS,
    TWO_CHAR_OPERATORS,
    Token,
    TokenType,
)


class Lexer:
    """Converts Domino source text into a token stream."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        """Lex the entire input, returning tokens ending with EOF."""
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                break
            tokens.append(self._next_token())
        tokens.append(Token(TokenType.EOF, "", self.line, self.column))
        return tokens

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.source):
            return ""
        return self.source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise DominoSyntaxError(
                        "unterminated block comment", start_line, start_col
                    )
            else:
                return

    def _next_token(self) -> Token:
        char = self._peek()
        line, column = self.line, self.column

        if char.isdigit():
            return self._lex_number(line, column)
        if char.isalpha() or char == "_":
            return self._lex_identifier(line, column)

        two = self.source[self.pos : self.pos + 2]
        if two in TWO_CHAR_OPERATORS:
            self._advance(2)
            return Token(TWO_CHAR_OPERATORS[two], two, line, column)
        if char in ONE_CHAR_OPERATORS:
            self._advance()
            return Token(ONE_CHAR_OPERATORS[char], char, line, column)

        raise DominoSyntaxError(f"unexpected character {char!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        # Hex literals: 0x1F.
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            if not self._peek().isalnum():
                raise DominoSyntaxError("malformed hex literal", line, column)
            while self._peek().isalnum():
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        try:
            int(text, 0)
        except ValueError:
            raise DominoSyntaxError(f"malformed number {text!r}", line, column)
        return Token(TokenType.INT_LITERAL, text, line, column)

    def _lex_identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        token_type = KEYWORDS.get(text, TokenType.IDENT)
        return Token(token_type, text, line, column)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source).tokenize()
