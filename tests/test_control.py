"""Tests for the control plane (§2.2.1's pre-runtime assumption)."""

import pytest

from repro.banzai import ControlPlane, deploy_wildcard_control
from repro.errors import ConfigError


class TestLifecycle:
    def test_create_install_commit(self):
        plane = ControlPlane()
        plane.create_table("acl")
        plane.install("acl", {"dport": 22}, action="drop", priority=10)
        plane.install_wildcard("acl", action="allow")
        plane.commit()
        assert plane.committed
        table = plane.table("acl")
        assert table.lookup({"dport": 22}).action == "drop"
        assert table.lookup({"dport": 80}).action == "allow"

    def test_no_updates_after_commit(self):
        plane = ControlPlane()
        plane.create_table("acl")
        plane.commit()
        with pytest.raises(ConfigError, match="committed"):
            plane.install("acl", {"x": 1})
        with pytest.raises(ConfigError, match="committed"):
            plane.create_table("late")

    def test_tables_sealed_on_commit(self):
        plane = ControlPlane()
        table = plane.create_table("t")
        plane.commit()
        assert table.sealed

    def test_duplicate_table_rejected(self):
        plane = ControlPlane()
        plane.create_table("t")
        with pytest.raises(ConfigError, match="exists"):
            plane.create_table("t")

    def test_unknown_table_rejected(self):
        plane = ControlPlane()
        with pytest.raises(ConfigError, match="unknown"):
            plane.install("ghost", {})

    def test_audit_log_records_operations(self):
        plane = ControlPlane()
        plane.create_table("t")
        plane.install("t", {"a": 1})
        plane.commit()
        ops = [r.operation for r in plane.audit_log()]
        assert ops == ["create", "install", "commit"]


class TestEquivalencePrecondition:
    def test_identical_planes_equivalent(self):
        def build():
            plane = ControlPlane()
            plane.create_table("t")
            plane.install("t", {"a": 1}, action="x")
            plane.commit()
            return plane

        assert build().equivalent_to(build())

    def test_diverged_planes_not_equivalent(self):
        a = ControlPlane()
        a.create_table("t")
        a.install("t", {"a": 1})
        b = ControlPlane()
        b.create_table("t")
        b.install("t", {"a": 2})
        assert not a.equivalent_to(b)

    def test_wildcard_deployment(self):
        plane = deploy_wildcard_control(4)
        assert plane.committed
        assert plane.tables() == ["stage0", "stage1", "stage2", "stage3"]
        for name in plane.tables():
            assert plane.table(name).lookup({"anything": 1}) is not None


class TestReportChart:
    def test_ascii_chart_shape(self):
        from repro.harness import ascii_chart

        chart = ascii_chart(["a", "bb"], [1.0, 0.5], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_ascii_chart_mismatched_lengths(self):
        from repro.harness import ascii_chart

        with pytest.raises(ValueError):
            ascii_chart(["a"], [1.0, 2.0])

    def test_ascii_chart_scales_above_max(self):
        from repro.harness import ascii_chart

        chart = ascii_chart([1], [2.0], width=10, max_value=1.0)
        assert chart.count("#") == 10  # clamped to the widest bar
