"""Tests for the Banzai substrate: registers, atoms, tables, pipeline."""

import pytest

from repro.banzai import (
    Atom,
    BanzaiPipeline,
    MatchEntry,
    MatchTable,
    RegisterFile,
    run_reference,
)
from repro.compiler import Const, OpKind, TacInstr, Temp, compile_program
from repro.errors import ConfigError


class TestRegisterFile:
    def test_from_declarations(self):
        rf = RegisterFile.from_declarations({"r": (2, (3, 4))})
        assert rf.read("r", 0) == 3
        assert rf.read("r", 1) == 4

    def test_write_and_read(self):
        rf = RegisterFile({"r": [0, 0]})
        rf.write("r", 1, 9)
        assert rf.read("r", 1) == 9

    def test_index_wraps(self):
        rf = RegisterFile({"r": [1, 2]})
        assert rf.read("r", 3) == 2

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            RegisterFile({"r": []})

    def test_snapshot_restore(self):
        rf = RegisterFile({"r": [1, 2]})
        snap = rf.snapshot()
        rf.write("r", 0, 99)
        rf.restore(snap)
        assert rf.read("r", 0) == 1

    def test_snapshot_is_immutable_copy(self):
        rf = RegisterFile({"r": [1]})
        snap = rf.snapshot()
        rf.write("r", 0, 5)
        assert snap["r"] == (1,)

    def test_diff(self):
        a = RegisterFile({"r": [1, 2]})
        b = RegisterFile({"r": [1, 3]})
        assert a.diff(b) == {"r": [(1, 2, 3)]}

    def test_diff_empty_when_equal(self):
        a = RegisterFile({"r": [1]})
        b = RegisterFile({"r": [1]})
        assert a.diff(b) == {}
        assert a == b

    def test_names_sorted(self):
        rf = RegisterFile({"z": [0], "a": [0]})
        assert rf.names() == ["a", "z"]


class TestAtom:
    def _counter_atom(self):
        t = Temp("v")
        u = Temp("w")
        return Atom(
            instrs=[
                TacInstr(OpKind.REG_READ, dest=t, reg="c", args=[Const(0)]),
                TacInstr(OpKind.BINARY, dest=u, op="+", args=[t, Const(1)]),
                TacInstr(OpKind.REG_WRITE, reg="c", args=[Const(0), u]),
            ]
        )

    def test_stateful_detection(self):
        assert self._counter_atom().is_stateful
        stateless = Atom(
            instrs=[TacInstr(OpKind.WRITE_FIELD, field_name="a", args=[Const(1)])]
        )
        assert not stateless.is_stateful

    def test_arrays_listed(self):
        assert self._counter_atom().arrays == ["c"]

    def test_execute_updates_state(self):
        rf = RegisterFile({"c": [0]})
        atom = self._counter_atom()
        env = {}
        atom.execute({}, env, rf)
        atom.execute({}, {}, rf)
        assert rf.read("c", 0) == 2

    def test_len_and_str(self):
        atom = self._counter_atom()
        assert len(atom) == 3
        assert "stateful" in str(atom)


class TestMatchTable:
    def test_wildcard_matches_everything(self):
        table = MatchTable.wildcard()
        assert table.lookup({"x": 1}) is not None

    def test_exact_match(self):
        table = MatchTable()
        table.add_entry(MatchEntry(fields={"dport": 80}, action="web"))
        assert table.lookup({"dport": 80}).action == "web"
        assert table.lookup({"dport": 22}) is None

    def test_priority_ordering(self):
        table = MatchTable()
        table.add_entry(MatchEntry(fields={}, action="default", priority=0))
        table.add_entry(MatchEntry(fields={"x": 1}, action="special", priority=10))
        assert table.lookup({"x": 1}).action == "special"
        assert table.lookup({"x": 2}).action == "default"

    def test_sealed_table_rejects_updates(self):
        table = MatchTable.wildcard()
        with pytest.raises(ConfigError, match="sealed"):
            table.add_entry(MatchEntry(fields={}))

    def test_entries_copy(self):
        table = MatchTable()
        table.add_entry(MatchEntry(fields={}))
        table.entries.clear()
        assert len(table.entries) == 1


class TestBanzaiPipeline:
    def test_processes_in_arrival_order(self, sequencer_program):
        trace = [(float(i), 0, {"seq": 0}) for i in range(10)]
        result = run_reference(sequencer_program, trace)
        headers = result.headers_by_id()
        assert [headers[i]["seq"] for i in range(10)] == list(range(1, 11))

    def test_tie_broken_by_port(self, sequencer_program):
        trace = [(0.0, 5, {"seq": 0}), (0.0, 1, {"seq": 0})]
        result = run_reference(sequencer_program, trace)
        headers = result.headers_by_id()
        # pkt ids are re-assigned in (time, port) order by the runner; the
        # packet on port 1 is sequenced first.
        assert headers[0]["seq"] == 1

    def test_one_packet_per_cycle(self, sequencer_program):
        trace = [(0.0, i, {"seq": 0}) for i in range(5)]
        result = run_reference(sequencer_program, trace)
        egress = sorted(p.egress_cycle for p in result.packets)
        assert len(set(egress)) == 5  # one egress per cycle

    def test_latency_equals_stage_count(self, sequencer_program):
        trace = [(0.0, 0, {"seq": 0})]
        pipeline = BanzaiPipeline(sequencer_program)
        result = pipeline.run(trace)
        pkt = result.packets[0]
        # Injected during cycle 0, one stage per cycle, leaves the last
        # stage at cycle == num_stages.
        assert pkt.egress_cycle == pipeline.num_stages

    def test_access_order_recorded(self, sequencer_program):
        trace = [(float(i), 0, {"seq": 0}) for i in range(4)]
        result = run_reference(sequencer_program, trace)
        assert result.access_order[("count", 0)] == [0, 1, 2, 3]

    def test_figure3_register_state(self, figure3_program):
        trace = [
            (float(i), 0, {"h1": 1, "h2": 1, "h3": 2, "mux": 1, "val": 0})
            for i in range(4)
        ] + [(4.0, 0, {"h1": 1, "h2": 3, "h3": 2, "mux": 0, "val": 0})]
        result = run_reference(figure3_program, trace)
        assert result.registers.read("reg3", 2) == 7

    def test_late_arrivals_idle_the_pipe(self, sequencer_program):
        trace = [(0.0, 0, {"seq": 0}), (100.0, 0, {"seq": 0})]
        result = run_reference(sequencer_program, trace)
        assert result.cycles > 100
        assert result.registers.read("count", 0) == 2
