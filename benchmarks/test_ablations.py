"""Ablation benchmarks for MP5's design choices (DESIGN.md §5).

Beyond the paper's own D2/D3/D4 microbenchmarks, these sweep the two
free parameters of the runtime the paper fixes by fiat:

* **remap period** — the Figure 6 heuristic runs "every few 100s of
  clock cycles"; we sweep the period (plus never / near-optimal) and
  check that 100 cycles sits on the flat part of the curve;
* **FIFO capacity** — §4.2 sizes each ring buffer at 8 entries,
  "sufficient to avoid tail drops based on observations in §4.4"; we
  verify 8 entries are indeed lossless for the real applications while
  tiny FIFOs do drop under synthetic worst-case load.
"""

import numpy as np

from repro.apps import FIGURE8_APPS
from repro.harness import format_table
from repro.mp5 import MP5Config, run_mp5
from repro.workloads import (
    clone_packets,
    make_sensitivity_program,
    sensitivity_trace,
)

from conftest import bench_params, run_once


def _throughput(program, trace, config):
    stats, _ = run_mp5(program, clone_packets(trace), config)
    return stats.throughput_normalized()


def test_ablation_remap_period(benchmark, show):
    params = bench_params()
    program = make_sensitivity_program(4, 512)

    def sweep():
        rows = []
        for label, config_kwargs in [
            ("never", dict(remap_algorithm="none", initial_shard="random")),
            ("period=50", dict(remap_period=50)),
            ("period=100", dict(remap_period=100)),
            ("period=400", dict(remap_period=400)),
            ("period=1600", dict(remap_period=1600)),
            ("optimal@100", dict(remap_algorithm="optimal", remap_period=100)),
        ]:
            scores = []
            for seed in params["seeds"]:
                trace = sensitivity_trace(
                    params["num_packets"], 4, 4, 512, pattern="skewed", seed=seed
                )
                scores.append(
                    _throughput(
                        program, trace, MP5Config(num_pipelines=4, **config_kwargs)
                    )
                )
            rows.append((label, float(np.mean(scores))))
        return rows

    rows = run_once(benchmark, sweep)
    show(format_table(["remap policy", "throughput"], rows,
                      title="Ablation: dynamic sharding remap period (skewed)"))
    scores = dict(rows)
    # Any periodic remapping beats never remapping...
    assert scores["period=100"] > scores["never"]
    # ...and the paper's choice of ~100 cycles is within noise of the
    # best periodic setting.
    best_periodic = max(
        v for k, v in scores.items() if k.startswith("period=")
    )
    assert scores["period=100"] > best_periodic - 0.05
    # The near-optimal repacker does not beat the heuristic by much —
    # the justification for shipping the cheap single-move heuristic.
    assert scores["optimal@100"] < scores["period=100"] + 0.08


def test_ablation_fifo_capacity(benchmark, show):
    params = bench_params()

    def sweep():
        rows = []
        # Real applications: 8-entry ring buffers are lossless (§4.2).
        for app in FIGURE8_APPS:
            program = app.compile()
            trace = app.workload(params["num_packets"], 4, seed=0)
            stats, _ = run_mp5(
                program, trace, MP5Config(num_pipelines=4, fifo_capacity=8)
            )
            rows.append((f"{app.name} (cap=8)", stats.dropped, stats.egressed))
        # Synthetic worst case: a global counter at 64 B line rate
        # overflows any finite FIFO.
        program = make_sensitivity_program(1, 1)
        trace = sensitivity_trace(params["num_packets"], 4, 1, 1, seed=0)
        stats, _ = run_mp5(
            program, trace, MP5Config(num_pipelines=4, fifo_capacity=8)
        )
        rows.append(("global counter (cap=8)", stats.dropped, stats.egressed))
        return rows

    rows = run_once(benchmark, sweep)
    show(format_table(["scenario", "drops", "egressed"], rows,
                      title="Ablation: 8-entry FIFOs (the paper's sizing)"))
    by_name = {name: drops for name, drops, _e in rows}
    for app in FIGURE8_APPS:
        assert by_name[f"{app.name} (cap=8)"] == 0, app.name
    assert by_name["global counter (cap=8)"] > 0


def test_ablation_ecn_marking_gives_early_signal(benchmark, show):
    """§3.4's suggested ECN-style backpressure: under inadmissible load
    the marking rate rises well before drops would occur with adaptive
    FIFOs, giving senders a usable congestion signal."""
    params = bench_params()
    program = make_sensitivity_program(1, 8)  # hot 8-entry register

    def sweep():
        rows = []
        for utilization in (0.2, 0.5, 1.0):
            trace = sensitivity_trace(
                max(1000, params["num_packets"] // 2), 4, 1, 8, seed=0
            )
            # Rescale arrivals to the target utilization.
            for pkt in trace:
                pkt.arrival = pkt.arrival / utilization
            stats, _ = run_mp5(
                program, trace, MP5Config(num_pipelines=4, ecn_threshold=8)
            )
            rows.append(
                (f"load={utilization:.1f}", stats.ecn_marked, stats.dropped)
            )
        return rows

    rows = run_once(benchmark, sweep)
    show(format_table(["offered load", "ECN marks", "drops"], rows,
                      title="Ablation: ECN marking vs offered load"))
    marks = {name: m for name, m, _d in rows}
    assert marks["load=0.2"] == 0  # admissible: no signal
    assert marks["load=1.0"] > marks["load=0.5"]  # signal grows with load
    assert marks["load=1.0"] > 0


def test_ablation_affinity_spray(benchmark, show):
    """Extension ablation: entering each packet at the pipeline of its
    first state access (the ingress evaluates the same stateless
    resolution logic) should cut crossbar traffic substantially at equal
    throughput — relevant because the crossbars dominate MP5's silicon
    area (§4.2)."""
    from repro.compiler import compile_program
    from repro.mp5 import MP5Switch

    params = bench_params()
    program = compile_program("heavy_hitter")

    from repro.workloads import line_rate_trace

    def sweep():
        rows = []
        for policy in ("roundrobin", "affinity"):
            trace = line_rate_trace(
                params["num_packets"],
                4,
                lambda r, i: {"src_ip": int(r.integers(0, 1024)), "hot": 0},
                seed=0,
            )
            switch = MP5Switch(
                program,
                MP5Config(
                    num_pipelines=4, spray_policy=policy, record_crossbar=True
                ),
            )
            stats = switch.run(trace)
            rows.append(
                (
                    policy,
                    stats.throughput_normalized(),
                    stats.steering_moves,
                    switch.crossbar.crossing_fraction(),
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    show(format_table(["spray", "throughput", "steering", "crossing frac"],
                      rows, title="Ablation: ingress affinity spray"))
    by_policy = {r[0]: r for r in rows}
    assert by_policy["affinity"][2] < 0.7 * by_policy["roundrobin"][2]
    assert by_policy["affinity"][1] > by_policy["roundrobin"][1] - 0.03
