"""Tests for the dynamic state sharding runtime (D2, Figure 6)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mp5 import ShardingRuntime


def runtime(size=8, k=4, shardable=True, initial="roundrobin", arrays=None):
    arrays = arrays or [("r", size, shardable, "r")]
    return ShardingRuntime(arrays, k, initial=initial, rng=np.random.default_rng(0))


class TestInitialPlacement:
    def test_roundrobin_spreads_indexes(self):
        rt = runtime(size=8, k=4)
        mapping = rt.arrays["r"].index_to_pipeline
        assert sorted(np.bincount(mapping, minlength=4)) == [2, 2, 2, 2]

    def test_random_uses_all_pipelines_eventually(self):
        rt = runtime(size=256, k=4, initial="random")
        mapping = rt.arrays["r"].index_to_pipeline
        assert set(np.unique(mapping)) == {0, 1, 2, 3}

    def test_non_shardable_on_one_pipeline(self):
        rt = runtime(size=8, shardable=False)
        mapping = rt.arrays["r"].index_to_pipeline
        assert len(set(mapping)) == 1

    def test_pin_key_groups_colocate(self):
        rt = runtime(
            arrays=[("a", 4, False, "grp"), ("b", 4, False, "grp")], k=4
        )
        assert rt.lookup("a", 0) == rt.lookup("b", 2)

    def test_different_pin_keys_spread(self):
        rt = runtime(
            arrays=[(f"r{i}", 1, False, f"r{i}") for i in range(4)], k=4
        )
        pipes = {rt.lookup(f"r{i}", 0) for i in range(4)}
        assert len(pipes) == 4

    def test_single_pipeline_everything_at_zero(self):
        rt = runtime(k=1)
        assert rt.lookup("r", 5) == 0

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            runtime(k=0)
        with pytest.raises(ConfigError):
            ShardingRuntime([("r", 4, True, "r")], 2, initial="magic")


class TestAccounting:
    def test_note_resolved_increments_counters(self):
        rt = runtime()
        rt.note_resolved("r", 3)
        rt.note_resolved("r", 3)
        state = rt.arrays["r"]
        assert state.access_counts[3] == 2
        assert state.in_flight[3] == 2

    def test_note_completed_decrements_in_flight(self):
        rt = runtime()
        rt.note_resolved("r", 3)
        rt.note_completed("r", 3)
        assert rt.arrays["r"].in_flight[3] == 0

    def test_in_flight_never_negative(self):
        rt = runtime()
        rt.note_completed("r", 0)
        assert rt.arrays["r"].in_flight[0] == 0

    def test_index_wraps(self):
        rt = runtime(size=4)
        rt.note_resolved("r", 7)
        assert rt.arrays["r"].access_counts[3] == 1

    def test_array_level_access_skips_counters(self):
        rt = runtime()
        pipe = rt.note_resolved("r", None)
        assert 0 <= pipe < 4
        assert rt.arrays["r"].access_counts.sum() == 0


class TestHeuristicRemap:
    def test_moves_from_high_to_low(self):
        rt = runtime(size=8, k=2)
        state = rt.arrays["r"]
        state.index_to_pipeline[:] = 0  # all on pipeline 0
        state.access_counts[:] = [10, 9, 8, 1, 0, 0, 0, 0]
        assert rt.remap_heuristic("r")
        # Something moved to pipeline 1.
        assert (state.index_to_pipeline == 1).sum() == 1

    def test_moves_largest_counter_below_half_gap(self):
        rt = runtime(size=4, k=2)
        state = rt.arrays["r"]
        state.index_to_pipeline[:] = 0
        state.access_counts[:] = [10, 6, 3, 1]
        rt.remap_heuristic("r")
        # gap = 20, C = 10; largest counter < 10 is index 1 (6).
        assert state.index_to_pipeline[1] == 1

    def test_in_flight_blocks_move(self):
        rt = runtime(size=2, k=2)
        state = rt.arrays["r"]
        state.index_to_pipeline[:] = 0
        state.access_counts[:] = [10, 4]
        state.in_flight[:] = [0, 3]  # only the movable candidate is busy
        assert not rt.remap_heuristic("r")

    def test_balanced_load_no_move(self):
        rt = runtime(size=4, k=2)
        state = rt.arrays["r"]
        state.index_to_pipeline[:] = [0, 1, 0, 1]
        state.access_counts[:] = [5, 5, 5, 5]
        assert not rt.remap_heuristic("r")

    def test_non_shardable_never_moves(self):
        rt = runtime(shardable=False)
        rt.arrays["r"].access_counts[:] = [100, 0, 0, 0, 0, 0, 0, 0]
        assert not rt.remap_heuristic("r")

    def test_end_epoch_resets_counters(self):
        rt = runtime()
        rt.note_resolved("r", 0)
        rt.end_epoch("heuristic")
        assert rt.arrays["r"].access_counts.sum() == 0

    def test_end_epoch_none_never_moves(self):
        rt = runtime(size=8, k=2)
        state = rt.arrays["r"]
        state.index_to_pipeline[:] = 0
        state.access_counts[:] = 5
        assert rt.end_epoch("none") == 0
        assert (state.index_to_pipeline == 0).all()

    def test_unknown_algorithm_rejected(self):
        rt = runtime()
        with pytest.raises(ConfigError):
            rt.end_epoch("magic")


class TestOptimalRemap:
    def test_converges_to_balance(self):
        rt = runtime(size=8, k=2)
        state = rt.arrays["r"]
        state.index_to_pipeline[:] = 0
        state.access_counts[:] = [8, 7, 6, 5, 4, 3, 2, 1]
        rt.remap_optimal("r")
        loads = np.zeros(2, dtype=int)
        np.add.at(loads, state.index_to_pipeline, state.access_counts)
        assert abs(loads[0] - loads[1]) <= 8  # within one max item

    def test_beats_or_equals_single_move(self):
        counts = [9, 8, 2, 2, 2, 1]
        rt_h = runtime(size=6, k=2)
        rt_o = runtime(size=6, k=2)
        for rt in (rt_h, rt_o):
            state = rt.arrays["r"]
            state.index_to_pipeline[:] = 0
            state.access_counts[:] = counts

        def imbalance(rt):
            state = rt.arrays["r"]
            loads = np.zeros(2, dtype=int)
            np.add.at(loads, state.index_to_pipeline, state.access_counts)
            return loads.max() - loads.min()

        rt_h.remap_heuristic("r")
        rt_o.remap_optimal("r")
        assert imbalance(rt_o) <= imbalance(rt_h)

    def test_respects_in_flight(self):
        rt = runtime(size=2, k=2)
        state = rt.arrays["r"]
        state.index_to_pipeline[:] = 0
        state.access_counts[:] = [5, 4]
        state.in_flight[:] = [1, 1]
        assert not rt.remap_optimal("r")


class TestDiagnostics:
    def test_load_imbalance_metric(self):
        rt = runtime(size=8, k=4)
        assert rt.load_imbalance("r") == pytest.approx(1.0)

    def test_sram_overhead_bits(self):
        rt = runtime(size=100)
        assert rt.sram_overhead_bits() == 3000
