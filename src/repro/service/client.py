"""Minimal synchronous client for the switch daemon's control plane.

Stdlib only (``urllib``); one method per endpoint, JSON in/out. Raises
:class:`ServiceClientError` (carrying the HTTP status and the server's
one-line diagnostic) on any non-2xx answer::

    from repro.service.client import ServiceClient

    client = ServiceClient("127.0.0.1", 8585)
    client.load_program("heavy_hitter")
    client.replay(packets=500)
    client.drain()
    print(client.health()["verdict"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(Exception):
    """A control-plane request failed; ``status`` is the HTTP code."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    def __init__(self, host: str = "127.0.0.1", port: int = 8585, timeout: float = 30.0):
        self.base = f"http://{host}:{port}"
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        raw: bool = False,
        data: Optional[bytes] = None,
        content_type: str = "application/json",
    ):
        if data is None:
            data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": content_type} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                text = resp.read().decode()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServiceClientError(exc.code, detail) from None
        return text if raw else json.loads(text)

    # -- read-only views ------------------------------------------------

    def health(self) -> Dict:
        return self._request("GET", "/health")

    def status(self) -> Dict:
        return self._request("GET", "/status")

    def metrics(self, since: int = -1) -> Dict:
        return self._request("GET", f"/metrics?since={since}")

    def alerts(self, since: int = 0) -> Dict:
        return self._request("GET", f"/alerts?since={since}")

    def metrics_prom(self) -> str:
        """The OpenMetrics text exposition (``GET /metrics.prom``)."""
        return self._request("GET", "/metrics.prom", raw=True)

    def segments(self) -> Dict:
        return self._request("GET", "/segments")

    def segment_results(self, index: int) -> str:
        """The canonical result payload of a closed segment, as the raw
        JSON string the server rendered (byte-comparable)."""
        return self._request("GET", f"/segments/{index}/results", raw=True)

    # -- control --------------------------------------------------------

    def load_program(
        self,
        program: Optional[str] = None,
        source: Optional[str] = None,
        name: Optional[str] = None,
        validate_only: bool = False,
    ) -> Dict:
        spec: Dict = {"validate_only": validate_only}
        if program:
            spec["program"] = program
        if source:
            spec["source"] = source
        if name:
            spec["name"] = name
        return self._request("POST", "/program", spec)

    def attach_faults(
        self, schedule: Optional[Dict] = None, path: Optional[str] = None
    ) -> Dict:
        spec = {"path": path} if path else {"schedule": schedule or {}}
        return self._request("POST", "/faults", spec)

    def detach_faults(self) -> Dict:
        return self._request("DELETE", "/faults")

    def set_monitor(self, enabled: bool = True) -> Dict:
        return self._request("POST", "/monitor", {"enabled": enabled})

    def configure(self, **knobs) -> Dict:
        return self._request("POST", "/config", knobs)

    def ingest(self, packets: List[Dict]) -> Dict:
        return self._request("POST", "/ingest", {"packets": packets})

    def ingest_ndjson(self, packets: List[Dict]) -> Dict:
        """One ``POST /ingest`` framed as NDJSON — one record per line,
        no enclosing array, so the server parses each packet without
        materializing one giant JSON document. This is the fast ingest
        path; semantics are identical to :meth:`ingest`."""
        data = b"".join(
            json.dumps(record, separators=(",", ":")).encode() + b"\n"
            for record in packets
        )
        return self._request(
            "POST",
            "/ingest",
            data=data,
            content_type="application/x-ndjson",
        )

    def replay(self, **spec) -> Dict:
        return self._request("POST", "/replay", spec)

    def replay_trace(
        self,
        packets: List[Dict],
        chunk: int = 512,
        max_wait: float = 30.0,
    ) -> Dict:
        """Client-side replay over the fast ingest path: push ``packets``
        (JSON records, arrival-ordered) in NDJSON chunks, retrying each
        chunk with backoff while the daemon answers 429 (ingest queue
        full — bounded backpressure doing its job). Returns totals."""
        if chunk < 1:
            raise ValueError("replay_trace chunk must be >= 1")
        sent = 0
        retries = 0
        for i in range(0, len(packets), chunk):
            part = packets[i : i + chunk]
            deadline = time.monotonic() + max_wait
            while True:
                try:
                    self.ingest_ndjson(part)
                except ServiceClientError as exc:
                    if exc.status != 429:
                        raise
                    if time.monotonic() >= deadline:
                        raise TimeoutError(
                            f"ingest queue still full after {max_wait}s "
                            f"(sent {sent}/{len(packets)} packets)"
                        ) from exc
                    retries += 1
                    time.sleep(0.02)
                else:
                    sent += len(part)
                    break
        return {
            "sent": sent,
            "chunks": (len(packets) + chunk - 1) // chunk,
            "retries": retries,
        }

    def pause(self) -> Dict:
        return self._request("POST", "/pause")

    def resume(self) -> Dict:
        return self._request("POST", "/resume")

    def drain(self) -> Dict:
        return self._request("POST", "/drain")

    def shutdown(self) -> Dict:
        return self._request("POST", "/shutdown")

    # -- streaming ------------------------------------------------------

    def _stream(
        self, path: str, since: int, poll: Optional[float], heartbeat: Optional[float]
    ) -> Iterator[Tuple[str, Dict]]:
        """Subscribe to an SSE route; yields ``(event, payload)`` pairs.

        The iterator ends when the server sends its final ``event: end``
        frame (daemon shutdown) or closes the connection. Heartbeat
        comment lines are consumed silently.
        """
        query = f"?since={since}"
        if poll is not None:
            query += f"&poll={poll}"
        if heartbeat is not None:
            query += f"&heartbeat={heartbeat}"
        req = urllib.request.Request(self.base + path + query, method="GET")
        try:
            resp = urllib.request.urlopen(req, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServiceClientError(exc.code, detail) from None
        with resp:
            event, data_lines = None, []
            for raw in resp:
                line = raw.decode().rstrip("\n").rstrip("\r")
                if line.startswith(":"):
                    continue  # heartbeat comment
                if line.startswith("event:"):
                    event = line[len("event:") :].strip()
                    continue
                if line.startswith("data:"):
                    data_lines.append(line[len("data:") :].strip())
                    continue
                if line == "" and event is not None:
                    payload = json.loads("\n".join(data_lines) or "{}")
                    if event == "end":
                        return
                    yield event, payload
                    event, data_lines = None, []

    def stream_metrics(
        self,
        since: int = -1,
        poll: Optional[float] = None,
        heartbeat: Optional[float] = None,
    ) -> Iterator[Dict]:
        """Push-based ``/metrics?since=`` equivalent: each yielded dict
        is a ``metrics_snapshot`` whose engine section holds only the
        window rows rolled since the previous frame."""
        for _event, payload in self._stream(
            "/stream/metrics", since, poll, heartbeat
        ):
            yield payload

    def stream_alerts(
        self,
        since: int = 0,
        poll: Optional[float] = None,
        heartbeat: Optional[float] = None,
    ) -> Iterator[Dict]:
        """Push-based ``/alerts?since=`` equivalent; each frame carries
        only the alerts raised since the previous one."""
        for _event, payload in self._stream(
            "/stream/alerts", since, poll, heartbeat
        ):
            yield payload

    def stream_health(
        self,
        poll: Optional[float] = None,
        heartbeat: Optional[float] = None,
    ) -> Iterator[Dict]:
        """Health documents, pushed on change (first frame immediate)."""
        for _event, payload in self._stream("/stream/health", -1, poll, heartbeat):
            yield payload

    # -- helpers --------------------------------------------------------

    def wait_ready(self, timeout: float = 15.0, interval: float = 0.1) -> Dict:
        """Poll ``/health`` until the daemon answers (startup helper)."""
        deadline = time.monotonic() + timeout
        last: Exception = RuntimeError("never polled")
        while time.monotonic() < deadline:
            try:
                return self.health()
            except (ServiceClientError, OSError) as exc:
                last = exc
                time.sleep(interval)
        raise TimeoutError(f"service not ready after {timeout}s: {last}")

    def wait_settled(self, timeout: float = 60.0, interval: float = 0.02) -> Dict:
        """Poll ``/status`` until the queue is empty and the engine has
        advanced to its ingest watermark (no runnable work)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status = self.status()
            if status["settled"]:
                return status
            time.sleep(interval)
        raise TimeoutError(f"service still busy after {timeout}s")
