"""Observability for the MP5 engine: tracing, metrics, profiling.

Three independent, individually attachable layers::

    from repro.obs import MetricsRegistry, PhaseProfiler, TraceRecorder

    recorder = TraceRecorder()
    metrics = MetricsRegistry(window=100)
    profiler = PhaseProfiler()
    stats, _ = run_mp5(
        program, trace, config,
        recorder=recorder, metrics=metrics, profiler=profiler,
    )
    write_chrome(recorder.events, "run.trace.json")  # open in Perfetto
    metrics.save("metrics.json")
    print(profiler.report())

Everything is gated behind a single attribute check in the engine: with
nothing attached, the fast path executes the same code it does today.
See ``docs/observability.md`` for the event schema and workflows.
"""

from .events import EVENT_TYPES, canonical_form, events_by_tick
from .metrics import Counter, Gauge, MetricsRegistry, WindowedHistogram
from .profiler import PhaseProfiler
from .summary import render_trace_summary, summarize_trace
from .trace import (
    TraceRecorder,
    chrome_trace,
    events_from_chrome,
    load_trace,
    read_jsonl,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "Counter",
    "EVENT_TYPES",
    "Gauge",
    "MetricsRegistry",
    "PhaseProfiler",
    "TraceRecorder",
    "WindowedHistogram",
    "canonical_form",
    "chrome_trace",
    "events_by_tick",
    "events_from_chrome",
    "load_trace",
    "read_jsonl",
    "render_trace_summary",
    "summarize_trace",
    "write_chrome",
    "write_jsonl",
]
