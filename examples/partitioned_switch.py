#!/usr/bin/env python3
"""Running two programs on one switch: logical MP5 partitioning.

§3.1 (footnote 1): MP5's compiler can program a subset of the physical
pipelines with one program and the rest with another, creating multiple
independent logical MP5 switches. Here an 8-pipeline switch dedicates
six pipelines to flowlet switching (heavy traffic, shardable state) and
two to a network telemetry sketch, then reports each partition's
throughput, latency, and state — including crossbar telemetry showing
how much inter-pipeline steering each partition really performs.

Run:  python examples/partitioned_switch.py
"""

from repro.apps import FLOWLET, HEAVY_HITTER
from repro.mp5 import LogicalPartition, MP5Config, PartitionedMP5


def main() -> None:
    flowlet_program = FLOWLET.compile()
    sketch_program = HEAVY_HITTER.compile()

    switch = PartitionedMP5(
        total_pipelines=8,
        partitions=[
            LogicalPartition(flowlet_program, 6, name="flowlet-lb"),
            LogicalPartition(sketch_program, 2, name="telemetry"),
        ],
        base_config=MP5Config(record_crossbar=True),
    )
    print(f"physical pipelines: 8, spare: {switch.spare_pipelines}")
    for part, pipes in zip(switch.partitions, switch.ranges):
        print(f"  {part.name:12s} -> pipelines {pipes[0]}..{pipes[1]}")
    print()

    flowlet_trace = FLOWLET.workload(9000, 6, seed=21)
    sketch_trace = HEAVY_HITTER.workload(3000, 2, seed=22)
    results = switch.run([flowlet_trace, sketch_trace])

    print("partition     throughput  p99 latency  steering  max queue")
    print("------------  ----------  -----------  --------  ---------")
    for result, inner in zip(results, switch.switches):
        stats = result.stats
        crossings = inner.crossbar.total_crossings if inner.crossbar else 0
        print(
            f"{result.name:12s}  {stats.throughput_normalized():10.3f}  "
            f"{stats.latency_percentile(99):11.1f}  {crossings:8d}  "
            f"{stats.max_queue_depth:9d}"
        )

    counts = results[1].registers["counts"]
    busiest = max(range(len(counts)), key=counts.__getitem__)
    print(
        f"\ntelemetry partition's busiest bucket: counts[{busiest}] = "
        f"{counts[busiest]} packets"
    )
    print("Both logical switches run at line rate, isolated from each other.")


if __name__ == "__main__":
    main()
