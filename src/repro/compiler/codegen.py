"""Code generation: map a transformed PVSM onto a Banzai machine target.

The code generator enforces the target's resource limits (stage count,
atoms per stage) and produces a :class:`CompiledProgram`, the artifact
both the single-pipeline reference and the MP5 multi-pipeline simulator
execute. Following §3.3:

* if the serialized schedule (one register array per stage) fits the
  stage budget, it is used — every array keeps its sharding eligibility;
* otherwise codegen falls back to the unserialized schedule, and any
  arrays that share a stage are *pinned* to a common pipeline (their
  ``pin_key`` groups them), trading parallelism for feasibility;
* if even that does not fit, a :class:`~repro.errors.ResourceError` is
  raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

from ..errors import ResourceError
from .pvsm import PvsmStage
from .tac import TacEvaluator, TacInstr, TacProgram
from .transformer import ArrayPlan, TransformedProgram


@dataclass(frozen=True)
class BanzaiTarget:
    """Resource envelope of the physical pipeline being compiled for.

    Defaults follow the paper's evaluation configuration: a 16-stage
    pipeline (§4.3.1) with a generous per-stage atom budget (the paper's
    area results use Banzai-style stages whose atom count is not the
    binding constraint for these programs) and the strongest Banzai atom
    template family (``paired``), which the multi-state programs like
    CONGA require. Restricting ``atom_template`` models weaker machines.
    """

    num_stages: int = 16
    max_atoms_per_stage: int = 64
    atom_template: str = "paired"
    name: str = "tofino-like"

    def __post_init__(self):
        from ..banzai.templates import TEMPLATE_BY_NAME

        if self.num_stages < 2:
            raise ResourceError("target needs at least 2 stages (resolution + 1)")
        if self.max_atoms_per_stage < 1:
            raise ResourceError("target needs at least 1 atom per stage")
        if self.atom_template not in TEMPLATE_BY_NAME:
            raise ResourceError(
                f"unknown atom template {self.atom_template!r}; choose from "
                f"{sorted(TEMPLATE_BY_NAME)}"
            )


@dataclass
class StageProgram:
    """The instructions and register arrays of one physical stage."""

    index: int
    instrs: List[TacInstr] = field(default_factory=list)
    arrays: List[str] = field(default_factory=list)

    @property
    def is_stateful(self) -> bool:
        return bool(self.arrays)


@dataclass
class CompiledProgram:
    """A program compiled for an MP5 (or single Banzai) pipeline.

    ``stages[0]`` is the preemptive address-resolution stage inserted by
    the MP5 transformer; the remaining entries carry the original
    processing with at most one *sharded* register array per stage.
    """

    name: str
    target: BanzaiTarget
    stages: List[StageProgram]
    arrays: Dict[str, ArrayPlan]
    packet_fields: List[str]
    tac: TacProgram
    _jit_cache: object = field(default=None, repr=False, compare=False)

    @property
    def stage_count(self) -> int:
        """Number of stages actually used (including resolution)."""
        return len(self.stages)

    @property
    def resolution(self) -> StageProgram:
        return self.stages[0]

    @property
    def stateful_stage_indexes(self) -> List[int]:
        return [s.index for s in self.stages if s.is_stateful]

    @property
    def is_stateless(self) -> bool:
        return not self.arrays

    def arrays_in_stage_order(self) -> List[ArrayPlan]:
        return sorted(self.arrays.values(), key=lambda a: (a.stage, a.name))

    def make_register_store(self) -> Dict[str, List[int]]:
        """Fresh register state initialized per the program's declarations."""
        return {
            name: list(self.tac.registers[name][1]) for name in self.tac.registers
        }

    # ------------------------------------------------------------------
    # Reference execution (logical single pipeline)
    # ------------------------------------------------------------------

    def execute_packet(
        self, headers: Dict[str, int], registers: Dict[str, List[int]]
    ) -> Dict[str, int]:
        """Process one packet to completion against ``registers``.

        This is the semantics of the logical single-pipelined switch:
        stages execute in order with no interleaving from other packets.
        Mutates ``headers`` and ``registers``; also returns ``headers``.
        """
        evaluator = TacEvaluator(headers, registers)
        for stage in self.stages:
            evaluator.run(stage.instrs)
        return headers

    def jit_stage_functions(self):
        """Stage programs compiled to Python callables (cached).

        Index-aligned with ``stages``; ``None`` for empty stages. Shared
        across every simulator instance running this program.
        """
        if self._jit_cache is None:
            from .jit import compile_program_stages

            object.__setattr__(self, "_jit_cache", compile_program_stages(self))
        return self._jit_cache

    def describe(self) -> str:
        """Human-readable summary of the compiled layout."""
        lines = [f"program {self.name!r} on target {self.target.name!r}:"]
        for stage in self.stages:
            tag = "resolution" if stage.index == 0 else f"stage {stage.index}"
            arrays = f" arrays={stage.arrays}" if stage.arrays else ""
            lines.append(f"  {tag}: {len(stage.instrs)} ops{arrays}")
        for plan in self.arrays_in_stage_order():
            kind = "shardable" if plan.shardable else "pinned"
            extra = " conservative-phantom" if plan.conservative_phantom else ""
            lines.append(
                f"  array {plan.name}[{plan.size}] @ stage {plan.stage}: "
                f"{kind}{extra}"
            )
        return "\n".join(lines)


def _stages_from_pvsm(stages: List[PvsmStage]) -> List[StageProgram]:
    return [
        StageProgram(index=i, instrs=list(s.instrs), arrays=list(s.arrays))
        for i, s in enumerate(stages)
    ]


def _check_atom_budget(stages: List[StageProgram], target: BanzaiTarget, name: str):
    for stage in stages:
        if len(stage.instrs) > target.max_atoms_per_stage:
            raise ResourceError(
                f"program {name!r}: stage {stage.index} needs "
                f"{len(stage.instrs)} atoms, target allows "
                f"{target.max_atoms_per_stage}"
            )


def generate(
    transformed: TransformedProgram,
    target: BanzaiTarget,
    name: str = "<program>",
) -> CompiledProgram:
    """Lower a transformed PVSM onto ``target``."""
    stages = _stages_from_pvsm(transformed.pvsm.stages)
    if len(stages) > target.num_stages:
        raise ResourceError(
            f"program {name!r} needs {len(stages)} stages, target "
            f"{target.name!r} has {target.num_stages}"
        )
    _check_atom_budget(stages, target, name)

    from ..banzai.templates import TEMPLATE_BY_NAME, check_atom_feasibility

    check_atom_feasibility(
        stages, TEMPLATE_BY_NAME[target.atom_template], program_name=name
    )

    arrays: Dict[str, ArrayPlan] = {}
    for stage in stages:
        if len(stage.arrays) > 1:
            # Co-staged arrays: every array in this stage is pinned to a
            # common pipeline (the conservative §3.3 fallback).
            for reg in stage.arrays:
                plan = transformed.arrays[reg]
                arrays[reg] = replace(
                    plan, shardable=False, pin_key=f"stage{stage.index}"
                )
        else:
            for reg in stage.arrays:
                arrays[reg] = transformed.arrays[reg]

    return CompiledProgram(
        name=name,
        target=target,
        stages=stages,
        arrays=arrays,
        packet_fields=list(transformed.tac.packet_fields),
        tac=transformed.tac,
    )
