"""Banzai atoms: the action units of a pipeline stage (§2.1).

An atom bundles the TAC instructions one stage executes for a packet.
Stateless atoms touch only packet state (header fields and carried
temporaries); stateful atoms additionally read/modify/write register
state, and Banzai guarantees those operations complete within the stage
("atomic state operations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..compiler.tac import OpKind, TacEvaluator, TacInstr, Temp
from .registers import RegisterFile


@dataclass
class Atom:
    """One action unit: an ordered list of TAC instructions."""

    instrs: List[TacInstr] = field(default_factory=list)
    name: str = "atom"

    @property
    def is_stateful(self) -> bool:
        return any(i.is_stateful for i in self.instrs)

    @property
    def arrays(self) -> List[str]:
        seen: List[str] = []
        for instr in self.instrs:
            if instr.reg is not None and instr.reg not in seen:
                seen.append(instr.reg)
        return seen

    def execute(
        self,
        headers: Dict[str, int],
        env: Dict[Temp, int],
        registers: RegisterFile,
        on_access=None,
    ) -> None:
        """Run the atom against a packet's headers/PHV and the registers.

        ``env`` is the packet's carried temporaries (its PHV metadata);
        the same dict must be passed to every stage the packet traverses.
        ``on_access`` (if given) is invoked for every state access that
        actually fires, as ``on_access(reg, index, kind)``.
        """
        evaluator = TacEvaluator(headers, registers.arrays, env, on_access=on_access)
        evaluator.run(self.instrs)

    def reads_written_fields(self) -> List[str]:
        return [
            i.field_name for i in self.instrs if i.kind is OpKind.WRITE_FIELD
        ]

    def __len__(self) -> int:
        return len(self.instrs)

    def __str__(self) -> str:
        kind = "stateful" if self.is_stateful else "stateless"
        return f"{self.name} ({kind}, {len(self.instrs)} ops)"
