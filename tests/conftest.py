"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import compile_program
from repro.workloads import line_rate_trace


@pytest.fixture(scope="session")
def figure3_program():
    return compile_program("figure3")


@pytest.fixture(scope="session")
def heavy_hitter_program():
    return compile_program("heavy_hitter")


@pytest.fixture(scope="session")
def sequencer_program():
    return compile_program("sequencer")


@pytest.fixture(scope="session")
def flowlet_program():
    return compile_program("flowlet")


def figure3_headers(rng: np.random.Generator, _i: int) -> dict:
    return {
        "h1": int(rng.integers(0, 4)),
        "h2": int(rng.integers(0, 4)),
        "h3": int(rng.integers(0, 4)),
        "mux": int(rng.integers(0, 2)),
        "val": 0,
    }


def heavy_hitter_headers(rng: np.random.Generator, _i: int) -> dict:
    return {"src_ip": int(rng.integers(0, 256)), "hot": 0}


@pytest.fixture
def figure3_trace():
    return line_rate_trace(600, 2, figure3_headers, seed=5)


@pytest.fixture
def heavy_hitter_trace():
    return line_rate_trace(800, 4, heavy_hitter_headers, seed=9)
