"""Register state for Banzai/MP5 pipelines.

A :class:`RegisterFile` holds every register array declared by a program.
In hardware each array lives inside one pipeline stage (Banzai: "no state
sharing across stages"); here the file is a single object because the
simulators enforce the stage-locality discipline structurally (a stage's
atom only ever names its own arrays).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from ..errors import ConfigError


class RegisterFile:
    """Mutable register arrays with snapshot/compare support."""

    def __init__(self, arrays: Mapping[str, Iterable[int]]):
        self._arrays: Dict[str, List[int]] = {
            name: list(values) for name, values in arrays.items()
        }
        for name, values in self._arrays.items():
            if not values:
                raise ConfigError(f"register array {name!r} has zero size")

    @classmethod
    def from_declarations(
        cls, declarations: Mapping[str, Tuple[int, Tuple[int, ...]]]
    ) -> "RegisterFile":
        """Build from ``{name: (size, initial_values)}`` (TacProgram form)."""
        return cls({name: init for name, (_size, init) in declarations.items()})

    @property
    def arrays(self) -> Dict[str, List[int]]:
        """Direct access for evaluators; treat as borrowed, not owned."""
        return self._arrays

    def names(self) -> List[str]:
        return sorted(self._arrays)

    def size_of(self, name: str) -> int:
        return len(self._arrays[name])

    def read(self, name: str, index: int) -> int:
        array = self._arrays[name]
        return array[index % len(array)]

    def write(self, name: str, index: int, value: int) -> None:
        array = self._arrays[name]
        array[index % len(array)] = value

    def snapshot(self) -> Dict[str, Tuple[int, ...]]:
        return {name: tuple(values) for name, values in self._arrays.items()}

    def restore(self, snapshot: Mapping[str, Tuple[int, ...]]) -> None:
        for name, values in snapshot.items():
            self._arrays[name] = list(values)

    def diff(self, other: "RegisterFile") -> Dict[str, List[Tuple[int, int, int]]]:
        """Per-array list of (index, self_value, other_value) mismatches."""
        mismatches: Dict[str, List[Tuple[int, int, int]]] = {}
        for name, mine in self._arrays.items():
            theirs = other._arrays.get(name)
            if theirs is None:
                mismatches[name] = [(i, v, 0) for i, v in enumerate(mine)]
                continue
            bad = [
                (i, a, b) for i, (a, b) in enumerate(zip(mine, theirs)) if a != b
            ]
            if bad:
                mismatches[name] = bad
        return mismatches

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegisterFile):
            return NotImplemented
        return self._arrays == other._arrays

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{n}[{len(v)}]" for n, v in sorted(self._arrays.items()))
        return f"RegisterFile({parts})"
