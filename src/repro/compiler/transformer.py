"""PVSM-to-PVSM transformer: MP5's addition to the Domino compiler (§3.3).

The transformer decouples *address resolution* from *stateful
processing*: for every stateful atom it moves the logic sufficient to
decide (a) whether the packet will access the register array and (b) at
which index, into a new stage at the beginning of the pipeline, and it
plans phantom-packet generation for each access.

Per register array the transformer classifies:

* **shardable** — the index expression is stateless (computable from the
  packet header alone), so it can be evaluated in the resolution stage
  and the array's indexes can be dynamically sharded across pipelines
  (D2). This is the common case the paper verified across a wide range
  of real programs.
* **pinned** — the index computation itself reads register state
  (e.g. ``ring[cursor]``), so the whole array is mapped to a single
  pipeline and an *array-level* phantom (no index) enforces ordering.
* **conservative phantom** — the access guard reads register state
  (e.g. flowlet's inter-arrival predicate), so MP5 assumes the predicate
  is true and always emits the phantom; a false predicate wastes one
  slot at the stateful stage (the paper's "nominal performance penalty
  of one wasted clock cycle").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import TransformError
from .pvsm import DependenceGraph, Pvsm, schedule
from .tac import OpKind, Operand, TacInstr, TacProgram, Temp


@dataclass
class ArrayPlan:
    """Compilation plan for one register array."""

    name: str
    size: int
    initial: Tuple[int, ...]
    stage: int  # stage index in the transformed pipeline (>= 1)
    shardable: bool
    index_operand: Optional[Operand]  # None when the index is stateful
    guard_operand: Optional[Operand]  # None when the access is unconditional
    guard_resolvable: bool  # True when the guard is evaluated at stage 0
    has_write: bool = False
    # Arrays sharing a pin_key must live in the same pipeline; pinned
    # co-staged arrays share one (set by codegen). Defaults to the array
    # name, i.e. an independent placement.
    pin_key: str = ""

    def __post_init__(self):
        if not self.pin_key:
            self.pin_key = self.name

    @property
    def conservative_phantom(self) -> bool:
        """Phantom is always generated even though the access may not fire."""
        return self.guard_operand is not None and not self.guard_resolvable


@dataclass
class TransformedProgram:
    """Output of the PVSM-to-PVSM transformer.

    ``pvsm.stages[0]`` is the preemptive address-resolution stage; stages
    1..N-1 carry the (possibly serialized) original processing, with at
    most one register array per stage.
    """

    tac: TacProgram
    pvsm: Pvsm
    arrays: Dict[str, ArrayPlan] = field(default_factory=dict)

    @property
    def resolution_stage(self):
        return self.pvsm.stages[0]

    @property
    def num_stages(self) -> int:
        return self.pvsm.num_stages

    @property
    def stateful_stages(self) -> List[int]:
        return self.pvsm.stateful_stages

    def arrays_in_stage_order(self) -> List[ArrayPlan]:
        return sorted(self.arrays.values(), key=lambda a: a.stage)


def _backward_slice(graph: DependenceGraph, roots: List[int]) -> Set[int]:
    out: Set[int] = set()
    for root in roots:
        out |= graph.reaching(root)
    return out


def _slice_is_stateless(graph: DependenceGraph, members: Set[int]) -> bool:
    return not any(
        graph.instrs[n].kind in (OpKind.REG_READ, OpKind.REG_WRITE) for n in members
    )


def transform(tac: TacProgram, serialize_arrays: bool = True) -> TransformedProgram:
    """Apply MP5's preemptive-address-resolution transform to ``tac``.

    With ``serialize_arrays=True`` (the default and what MP5's compiler
    does when the stage budget allows), each register array gets its own
    stage. Callers that hit a resource limit can retry with ``False``, in
    which case arrays sharing a stage are later pinned to a common
    pipeline by code generation.
    """
    graph = DependenceGraph(tac.instrs)
    definer: Dict[Temp, int] = {}
    for n, instr in enumerate(tac.instrs):
        dest = instr.defines()
        if dest is not None:
            definer[dest] = n

    reads: Dict[str, TacInstr] = {}
    writes: Set[str] = set()
    for instr in tac.instrs:
        if instr.kind is OpKind.REG_READ:
            reads[instr.reg] = instr
        elif instr.kind is OpKind.REG_WRITE:
            writes.add(instr.reg)

    pinned_levels: Dict[int, int] = {}
    plans_meta: Dict[str, dict] = {}

    for reg, read in reads.items():
        index_op = read.args[0]
        guard_op = read.guard

        # --- index slice ---
        index_stateless = True
        if isinstance(index_op, Temp):
            slice_members = _backward_slice(graph, [definer[index_op]])
            index_stateless = _slice_is_stateless(graph, slice_members)
            if index_stateless:
                for n in slice_members:
                    pinned_levels[n] = 0
        # A Const index is trivially resolvable.

        # --- guard slice ---
        guard_resolvable = True
        if guard_op is not None:
            slice_members = _backward_slice(graph, [definer[guard_op]])
            guard_resolvable = _slice_is_stateless(graph, slice_members)
            if guard_resolvable:
                for n in slice_members:
                    pinned_levels[n] = 0

        plans_meta[reg] = {
            "index_stateless": index_stateless,
            "guard_resolvable": guard_resolvable,
            "index_operand": index_op if index_stateless else None,
            "guard_operand": guard_op,
        }

    pvsm = schedule(
        tac,
        pinned_levels=pinned_levels,
        serialize_arrays=serialize_arrays,
        min_cluster_level=1,
    )

    transformed = TransformedProgram(tac=tac, pvsm=pvsm)
    for reg, meta in plans_meta.items():
        size, initial = tac.registers[reg]
        try:
            stage = pvsm.stage_of_array(reg)
        except KeyError:
            raise TransformError(
                f"register {reg!r} read but its cluster was not scheduled"
            ) from None
        if stage < 1:
            raise TransformError(
                f"register {reg!r} scheduled in the address-resolution stage"
            )
        transformed.arrays[reg] = ArrayPlan(
            name=reg,
            size=size,
            initial=initial,
            stage=stage,
            shardable=bool(meta["index_stateless"]),
            index_operand=meta["index_operand"],
            guard_operand=meta["guard_operand"],
            guard_resolvable=bool(meta["guard_resolvable"]),
            has_write=reg in writes,
        )
    return transformed
