"""Domino language frontend: lexer, parser, AST, semantics, programs.

Domino [Sivaraman et al., SIGCOMM 2016] is the C-like language the paper
uses to write packet-processing programs against a single logical
pipeline. This package implements the subset needed by the paper's
examples and evaluation applications.

Typical use::

    from repro.domino import parse, analyze, get_program

    program = parse(source_text)
    info = analyze(program)          # normalizes AST, gathers facts
    flowlet = get_program("flowlet") # bundled, pre-checked program
"""

from .ast_nodes import (
    Assign,
    BinaryExpr,
    CallExpr,
    Expr,
    If,
    IntLiteral,
    LocalDecl,
    LocalVar,
    PacketField,
    PacketStruct,
    Program,
    RegisterDecl,
    RegisterRef,
    Stmt,
    TernaryExpr,
    UnaryExpr,
)
from .builtins import BUILTINS, hash2, hash3, hash5, hash_tuple
from .lexer import Lexer, tokenize
from .parser import Parser, parse
from .programs import get_program, get_source, program_names
from .semantic import SemanticInfo, analyze, expr_reads_register
from .tokens import Token, TokenType

__all__ = [
    "Assign",
    "BinaryExpr",
    "BUILTINS",
    "CallExpr",
    "Expr",
    "If",
    "IntLiteral",
    "Lexer",
    "LocalDecl",
    "LocalVar",
    "PacketField",
    "PacketStruct",
    "Parser",
    "Program",
    "RegisterDecl",
    "RegisterRef",
    "SemanticInfo",
    "Stmt",
    "TernaryExpr",
    "Token",
    "TokenType",
    "UnaryExpr",
    "analyze",
    "expr_reads_register",
    "get_program",
    "get_source",
    "hash2",
    "hash3",
    "hash5",
    "hash_tuple",
    "parse",
    "program_names",
    "tokenize",
]
