"""Tests for Domino builtin functions."""

from repro.domino import hash2, hash3, hash5, hash_tuple
from repro.domino.builtins import BUILTINS, builtin_max, builtin_min


class TestHashes:
    def test_deterministic(self):
        assert hash2(1, 2) == hash2(1, 2)
        assert hash5(1, 2, 3, 4, 5) == hash5(1, 2, 3, 4, 5)

    def test_order_sensitive(self):
        assert hash2(1, 2) != hash2(2, 1)

    def test_non_negative(self):
        for a in range(-50, 50, 7):
            assert hash_tuple((a, a * 3)) >= 0

    def test_fits_31_bits(self):
        for a in range(100):
            assert hash2(a, a) < 2**31

    def test_spread_over_buckets(self):
        buckets = [hash2(i, 0) % 16 for i in range(1600)]
        counts = [buckets.count(b) for b in range(16)]
        # A sane hash keeps every bucket within 2x of the mean.
        assert min(counts) > 50
        assert max(counts) < 200

    def test_hash3_differs_from_hash2_extension(self):
        assert hash3(1, 2, 0) != hash2(1, 2)


class TestMinMax:
    def test_min(self):
        assert builtin_min(3, 5) == 3
        assert builtin_min(5, 3) == 3
        assert builtin_min(-1, 1) == -1

    def test_max(self):
        assert builtin_max(3, 5) == 5
        assert builtin_max(-4, -9) == -4

    def test_registry_complete(self):
        assert set(BUILTINS) == {"hash2", "hash3", "hash5", "min", "max"}
