"""Match tables for RMT pipeline stages.

In RMT, each stage matches packet header fields against a table populated
by the control plane and the matching entry selects the action. Domino
compiles programs whose action always fires (an implicit wildcard match),
but we model the table explicitly for architectural fidelity and for the
functional-equivalence assumption of §2.2.1: control-plane operations
(table population) happen identically on both switches before runtime,
and never during it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class MatchEntry:
    """One exact-match entry. Empty ``fields`` is a wildcard (matches all)."""

    fields: Mapping[str, int]
    action: str = "default"
    priority: int = 0

    def matches(self, headers: Mapping[str, int]) -> bool:
        return all(headers.get(name) == value for name, value in self.fields.items())


class MatchTable:
    """An exact-match table with priority-ordered lookup.

    The control plane populates entries before runtime via
    :meth:`add_entry`; :meth:`seal` freezes the table, after which
    mutation raises — enforcing the "no control-plane operations during
    runtime" assumption.
    """

    def __init__(self, name: str = "table"):
        self.name = name
        self._entries: List[MatchEntry] = []
        self._sealed = False

    def add_entry(self, entry: MatchEntry) -> None:
        if self._sealed:
            raise ConfigError(
                f"match table {self.name!r} is sealed; control-plane updates "
                f"are not allowed during runtime (§2.2.1)"
            )
        self._entries.append(entry)
        self._entries.sort(key=lambda e: -e.priority)

    def seal(self) -> None:
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    @property
    def entries(self) -> List[MatchEntry]:
        return list(self._entries)

    def lookup(self, headers: Mapping[str, int]) -> Optional[MatchEntry]:
        """Highest-priority matching entry, or None on a miss."""
        for entry in self._entries:
            if entry.matches(headers):
                return entry
        return None

    @classmethod
    def wildcard(cls, name: str = "table", action: str = "default") -> "MatchTable":
        """A table whose single entry matches every packet — the shape
        Domino-compiled stages use."""
        table = cls(name)
        table.add_entry(MatchEntry(fields={}, action=action))
        table.seal()
        return table
