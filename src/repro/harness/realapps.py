"""Figure 8 (§4.4): real applications under realistic traffic.

For each of flowlet switching, CONGA, WFQ and the network sequencer:
bimodal 200 B / 1400 B packet sizes, web-search flow sizes, and a sweep
over the number of pipelines. The paper reports line-rate throughput for
every application and pipeline count, with bounded per-stage queues
(max 11 / 8 / 7 / 7 packets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..apps import FIGURE8_APPS, Application
from ..mp5.config import MP5Config
from ..mp5.switch import run_mp5
from .report import format_table

# Up to Tofino-2-class parallelism. Beyond k=8 the scalar-register
# applications (CONGA, WFQ, sequencer) hit the fundamental single-state
# processing limit of §3.5.2 once k * 64B / mean-packet-size exceeds one
# packet per clock; tests cover that regime explicitly.
PIPELINE_SWEEP = (1, 2, 4, 8)


@dataclass
class RealAppPoint:
    app: str
    num_pipelines: int
    throughput: float
    max_queue_depth: int
    wasted_slots: int
    dropped: int


@dataclass
class RealAppSettings:
    num_packets: int = 6000
    seeds: Sequence[int] = (0, 1)
    num_ports: int = 64
    max_ticks: Optional[int] = None
    fifo_capacity: Optional[int] = None  # None = adaptive (no loss), as §4.3.1


def run_application(
    app: Application,
    pipeline_counts: Sequence[int] = PIPELINE_SWEEP,
    settings: Optional[RealAppSettings] = None,
) -> List[RealAppPoint]:
    """Sweep one application over pipeline counts."""
    settings = settings or RealAppSettings()
    program = app.compile()
    points = []
    for k in pipeline_counts:
        throughputs, queue_depths, wasted, dropped = [], [], [], []
        for seed in settings.seeds:
            trace = app.workload(
                settings.num_packets,
                k,
                seed=seed,
                num_ports=settings.num_ports,
            )
            stats, _ = run_mp5(
                program,
                trace,
                MP5Config(
                    num_pipelines=k,
                    num_ports=settings.num_ports,
                    fifo_capacity=settings.fifo_capacity,
                ),
                max_ticks=settings.max_ticks,
            )
            throughputs.append(stats.throughput_normalized())
            queue_depths.append(stats.max_queue_depth)
            wasted.append(stats.wasted_slots)
            dropped.append(stats.dropped)
        points.append(
            RealAppPoint(
                app=app.name,
                num_pipelines=k,
                throughput=float(np.mean(throughputs)),
                max_queue_depth=int(np.max(queue_depths)),
                wasted_slots=int(np.max(wasted)),
                dropped=int(np.sum(dropped)),
            )
        )
    return points


def run_figure8(
    pipeline_counts: Sequence[int] = PIPELINE_SWEEP,
    settings: Optional[RealAppSettings] = None,
) -> Dict[str, List[RealAppPoint]]:
    """All four Figure 8 panels."""
    return {
        app.name: run_application(app, pipeline_counts, settings)
        for app in FIGURE8_APPS
    }


def render_figure8(results: Dict[str, List[RealAppPoint]]) -> str:
    """Render one table per Figure 8 panel."""
    sections = []
    panel = dict(flowlet="8a", conga="8b", wfq="8c", sequencer="8d")
    for app, points in results.items():
        rows = [
            (p.num_pipelines, p.throughput, p.max_queue_depth, p.dropped)
            for p in points
        ]
        sections.append(
            format_table(
                ["pipelines", "throughput", "max queue", "drops"],
                rows,
                title=f"Figure {panel.get(app, '?')}: {app}",
            )
        )
    return "\n\n".join(sections)
