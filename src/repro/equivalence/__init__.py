"""Functional-equivalence checking (§2.2.1).

The full contract (identical register and packet state vs the logical
single-pipeline switch) lives in :func:`check_equivalence`; the
fault-tolerant *degraded* contract (survivor C1 + drop accounting, used
by :mod:`repro.faults`) lives in :func:`check_degraded`.
"""

from .checker import (
    DegradedReport,
    EquivalenceReport,
    check_degraded,
    check_equivalence,
    compare_runs,
)

__all__ = [
    "DegradedReport",
    "EquivalenceReport",
    "check_degraded",
    "check_equivalence",
    "compare_runs",
]
