"""Tests for code generation and the compile driver."""

import pytest

from repro.compiler import BanzaiTarget, compile_program, generate, preprocess, transform
from repro.domino import get_program
from repro.errors import ResourceError


class TestTarget:
    def test_default_target(self):
        target = BanzaiTarget()
        assert target.num_stages == 16

    def test_too_few_stages_rejected(self):
        with pytest.raises(ResourceError):
            BanzaiTarget(num_stages=1)

    def test_zero_atom_budget_rejected(self):
        with pytest.raises(ResourceError):
            BanzaiTarget(max_atoms_per_stage=0)


class TestGenerate:
    def test_stage_budget_enforced(self):
        transformed = transform(preprocess(get_program("bloom_filter")))
        with pytest.raises(ResourceError, match="stages"):
            generate(transformed, BanzaiTarget(num_stages=3))

    def test_atom_budget_enforced(self):
        transformed = transform(preprocess(get_program("flowlet")))
        with pytest.raises(ResourceError, match="atoms"):
            generate(transformed, BanzaiTarget(max_atoms_per_stage=1))

    def test_fits_default_target(self):
        compiled = compile_program("flowlet")
        assert compiled.stage_count <= compiled.target.num_stages


class TestCompiledProgram:
    def test_stage_zero_is_resolution(self):
        compiled = compile_program("heavy_hitter")
        assert compiled.resolution.index == 0
        assert not compiled.resolution.is_stateful

    def test_stateful_stage_indexes(self):
        compiled = compile_program("bloom_filter")
        assert len(compiled.stateful_stage_indexes) == 3

    def test_is_stateless_flag(self):
        assert compile_program("stateless_rewrite").is_stateless
        assert not compile_program("heavy_hitter").is_stateless

    def test_register_store_is_fresh_each_time(self):
        compiled = compile_program("figure3")
        a = compiled.make_register_store()
        b = compiled.make_register_store()
        a["reg1"][0] = 999
        assert b["reg1"][0] == 2

    def test_execute_packet_mutates_and_returns(self):
        compiled = compile_program("sequencer")
        regs = compiled.make_register_store()
        out = compiled.execute_packet({"seq": 0}, regs)
        assert out["seq"] == 1
        assert regs["count"][0] == 1

    def test_describe_mentions_every_array(self):
        compiled = compile_program("figure3")
        text = compiled.describe()
        for reg in ("reg1", "reg2", "reg3"):
            assert reg in text


class TestCompileDriver:
    def test_compile_by_name(self):
        assert compile_program("figure3").name == "figure3"

    def test_compile_raw_source(self):
        source = (
            "struct Packet { int x; };\nint c = 0;\n"
            "void func(struct Packet p) { c = c + p.x; }"
        )
        compiled = compile_program(source, name="adder")
        assert compiled.name == "adder"
        assert "c" in compiled.arrays

    def test_compile_parsed_program(self):
        compiled = compile_program(get_program("wfq"))
        assert compiled.name == "wfq"

    def test_fallback_pins_costaged_arrays(self):
        # bloom_filter needs 8 serialized stages; one fewer forces the
        # compiler to co-stage arrays and pin them.
        compiled = compile_program(
            "bloom_filter", target=BanzaiTarget(num_stages=7)
        )
        pinned = [p for p in compiled.arrays.values() if not p.shardable]
        assert pinned
        # Co-staged arrays share a pin key.
        by_stage = {}
        for plan in compiled.arrays.values():
            by_stage.setdefault(plan.stage, []).append(plan)
        for plans in by_stage.values():
            if len(plans) > 1:
                assert len({p.pin_key for p in plans}) == 1

    def test_conga_costaged_arrays_share_pin_key(self):
        compiled = compile_program("conga")
        keys = {p.pin_key for p in compiled.arrays.values()}
        assert len(keys) == 1

    def test_impossible_program_raises(self):
        with pytest.raises(ResourceError):
            compile_program("bloom_filter", target=BanzaiTarget(num_stages=2))


class TestCompilerDeterminism:
    def test_compile_twice_identical_layout(self):
        a = compile_program("flowlet")
        b = compile_program("flowlet")
        assert a.describe() == b.describe()
        assert [str(i) for s in a.stages for i in s.instrs] == [
            str(i) for s in b.stages for i in s.instrs
        ]

    def test_all_programs_compile_deterministically(self):
        from repro.domino import program_names

        for name in program_names():
            first = compile_program(name).describe()
            second = compile_program(name).describe()
            assert first == second, name
