"""MP5 core: the multi-pipelined programmable switch (architecture + runtime).

The four design decisions of §3 map onto this package:

* **D1** (k identical feed-forward pipelines) — the occupancy grid and
  per-tick movement in :mod:`repro.mp5.switch` (fast sparse engine) and
  :mod:`repro.mp5.reference` (dense executable specification).
* **D2** (dynamically sharded register state) — the index-to-pipeline
  map, access/in-flight counters, the Figure 6 remap heuristic, and the
  emergency evacuation used under faults, all in
  :mod:`repro.mp5.sharding`.
* **D3** (inter-stage crossbars) — steering happens inline in the
  engines; :mod:`repro.mp5.crossbar` adds the telemetry/assertion model.
* **D4** (phantom packets + per-stage k-FIFO groups) — the
  push/insert/pop discipline of :mod:`repro.mp5.fifo`, which enforces
  correctness condition **C1**: every register state is accessed in
  packet-arrival order (accounting in :mod:`repro.mp5.stats`).

Public surface::

    from repro.mp5 import MP5Switch, MP5Config, run_mp5

    program = compile_program("flowlet")
    stats, registers = run_mp5(program, trace, MP5Config(num_pipelines=4))
"""

from .config import MP5Config
from .crossbar import CrossbarTelemetry
from .fifo import IdealOrderBuffer, Slot, StageFifoGroup
from .packet import DataPacket, PhantomPacket, StateAccess
from .partition import LogicalPartition, PartitionedMP5, PartitionResult
from .reference import ReferenceSwitch, run_mp5_reference
from .sharding import ShardedArray, ShardingRuntime
from .stats import C1Report, SwitchStats, c1_metrics, c1_violations
from .switch import FLOW_ORDER_ARRAY, MP5Switch, run_mp5

__all__ = [
    "CrossbarTelemetry",
    "DataPacket",
    "FLOW_ORDER_ARRAY",
    "IdealOrderBuffer",
    "LogicalPartition",
    "PartitionResult",
    "PartitionedMP5",
    "MP5Config",
    "MP5Switch",
    "PhantomPacket",
    "ReferenceSwitch",
    "ShardedArray",
    "ShardingRuntime",
    "Slot",
    "StageFifoGroup",
    "StateAccess",
    "C1Report",
    "SwitchStats",
    "c1_metrics",
    "c1_violations",
    "run_mp5",
    "run_mp5_reference",
]
