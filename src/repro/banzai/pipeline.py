"""A cycle-accurate single Banzai pipeline — the logical reference switch.

This is the "logical single pipelined programmable switch" of §2.2: a
single feed-forward pipeline that processes packets at the full line rate
N*B. Its characteristics (§2.1) hold structurally here:

* **feed-forward** — packets advance exactly one stage per cycle;
* **one packet per stage** — enforced by construction (injection admits
  at most one packet per cycle, stages shift in lockstep);
* **atomic state operations** — a stage's atom executes completely within
  the cycle the packet occupies that stage;
* **no state sharing across stages** — each register array belongs to
  exactly one stage.

Because the pipeline never stalls, the state-access order it produces is
the packet arrival order; that order and the final (register, packet)
state are the ground truth the equivalence checker compares MP5 against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..compiler.codegen import CompiledProgram
from ..compiler.tac import Temp
from ..errors import ConfigError
from .atoms import Atom
from .match_table import MatchTable
from .registers import RegisterFile


@dataclass
class PipelinePacket:
    """A packet traversing the pipeline (its PHV)."""

    pkt_id: int
    arrival: float
    port: int
    headers: Dict[str, int]
    env: Dict[Temp, int] = field(default_factory=dict)
    egress_cycle: Optional[int] = None


@dataclass
class BanzaiStageUnit:
    """One physical stage: a match table plus its action atom."""

    index: int
    table: MatchTable
    atom: Atom

    def process(
        self,
        packet: PipelinePacket,
        registers: RegisterFile,
        on_access=None,
    ) -> None:
        entry = self.table.lookup(packet.headers)
        if entry is None:
            return
        self.atom.execute(packet.headers, packet.env, registers, on_access=on_access)


@dataclass
class RunResult:
    """Outcome of driving a packet trace through a pipeline."""

    packets: List[PipelinePacket]
    registers: RegisterFile
    cycles: int
    # Arrival-ordered ids of packets that accessed each state, keyed by
    # (array, index); the C1 reference order.
    access_order: Dict[Tuple[str, int], List[int]] = field(default_factory=dict)

    @property
    def egress_order(self) -> List[int]:
        done = [p for p in self.packets if p.egress_cycle is not None]
        return [p.pkt_id for p in sorted(done, key=lambda p: (p.egress_cycle, p.pkt_id))]

    def headers_by_id(self) -> Dict[int, Dict[str, int]]:
        return {p.pkt_id: p.headers for p in self.packets}


class BanzaiPipeline:
    """Cycle-driven simulator of a single Banzai pipeline."""

    def __init__(self, program: CompiledProgram):
        self.program = program
        self.registers = RegisterFile.from_declarations(program.tac.registers)
        self.stages: List[BanzaiStageUnit] = [
            BanzaiStageUnit(
                index=stage.index,
                table=MatchTable.wildcard(name=f"stage{stage.index}"),
                atom=Atom(instrs=list(stage.instrs), name=f"atom{stage.index}"),
            )
            for stage in program.stages
        ]
        if not self.stages:
            raise ConfigError("program has no stages")

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def run(
        self,
        trace: List[Tuple[float, int, Dict[str, int]]],
        record_access_order: bool = False,
    ) -> RunResult:
        """Drive ``trace`` — a list of (arrival_time, port, headers) — to
        completion and return the final state.

        Arrival times are in units of this pipeline's own cycles (it
        serves one packet per cycle at full line rate). Ties are broken
        by port id, per §2.2.1.
        """
        ordered = sorted(
            (
                PipelinePacket(pkt_id=i, arrival=t, port=port, headers=dict(headers))
                for i, (t, port, headers) in enumerate(trace)
            ),
            key=lambda p: (p.arrival, p.port, p.pkt_id),
        )
        for seq, packet in enumerate(ordered):
            packet.pkt_id = seq  # arrival-ordered ids, matching MP5Switch
        access_order: Dict[Tuple[str, int], List[int]] = {}
        in_flight: List[Optional[PipelinePacket]] = [None] * self.num_stages
        cycle = 0
        next_input = 0
        while next_input < len(ordered) or any(p is not None for p in in_flight):
            # Shift the pipeline: last stage egresses, others advance.
            tail = in_flight[-1]
            if tail is not None:
                tail.egress_cycle = cycle
            for i in range(self.num_stages - 1, 0, -1):
                in_flight[i] = in_flight[i - 1]
            in_flight[0] = None
            # Inject at most one packet whose arrival time has come.
            if next_input < len(ordered) and ordered[next_input].arrival <= cycle:
                in_flight[0] = ordered[next_input]
                next_input += 1
            # Each occupied stage processes its packet this cycle.
            for stage, packet in zip(self.stages, in_flight):
                if packet is None:
                    continue
                if record_access_order:
                    pkt_id = packet.pkt_id

                    def logger(reg, idx, kind, _pid=pkt_id):
                        key = (reg, idx)
                        order = access_order.setdefault(key, [])
                        if not order or order[-1] != _pid:
                            order.append(_pid)

                    stage.process(packet, self.registers, on_access=logger)
                else:
                    stage.process(packet, self.registers)
            cycle += 1
        return RunResult(
            packets=ordered,
            registers=self.registers,
            cycles=cycle,
            access_order=access_order,
        )


def run_reference(
    program: CompiledProgram,
    trace: List[Tuple[float, int, Dict[str, int]]],
    record_access_order: bool = True,
) -> RunResult:
    """Convenience: run ``trace`` through a fresh single Banzai pipeline."""
    return BanzaiPipeline(program).run(trace, record_access_order=record_access_order)
