"""One-shot reproduction: regenerate every table and figure into files.

``run_all`` executes Table 1, the §4.3.2 microbenchmarks, all four
Figure 7 sweeps and Figure 8, writes each rendered table to
``<out>/<artifact>.txt`` plus a machine-readable ``results.json``, and
returns the combined report. The CLI exposes it as
``python -m repro reproduce [--out DIR] [--scale small|full]``.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Dict, Optional

from ..mp5 import ENGINES
from .microbench import MicrobenchSettings, render_microbench, run_d2, run_d3, run_d4
from .realapps import RealAppSettings, render_figure8, run_figure8
from .sensitivity import (
    DEFAULTS,
    SweepSettings,
    render_sweep,
    sweep_packet_size,
    sweep_pipelines,
    sweep_register_size,
    sweep_stateful_stages,
)
from .table1 import render_table1, run_table1

SCALES = {
    "tiny": dict(num_packets=600, seeds=(0,), micro_seeds=(0,)),  # CI smoke
    "small": dict(num_packets=2000, seeds=(0,), micro_seeds=(0, 1)),
    "full": dict(num_packets=5000, seeds=(0, 1), micro_seeds=tuple(range(10))),
    # Statistically heavier tier enabled by the vector engine: 50k-packet
    # streams, multi-seed. The microbenchmarks keep a smaller stream --
    # they need record_access_order and static-shard configs, which only
    # the scalar engines support, so 50k packets there would dominate the
    # wall clock without the batch speedup.
    "large": dict(
        num_packets=50000,
        seeds=(0, 1),
        micro_seeds=(0,),
        micro_packets=5000,
        engine="vector",
    ),
    # Million-packet tier: Figure 8 streams 1M packets per (app, k,
    # seed) point through the vector engine with the fused native
    # kernel tier on. The Figure 7 sweeps stay at 50k -- their cost
    # scales with the pipeline sweep (k=16 quadruples the stream) and
    # the statistics converge well before 1M -- as do the scalar-only
    # microbenchmarks.
    "xlarge": dict(
        num_packets=1_000_000,
        seeds=(0,),
        micro_seeds=(0,),
        micro_packets=5000,
        sensitivity_packets=50_000,
        engine="vector",
        native=True,
    ),
}


def _observability_run(
    out: Path,
    knobs: Dict[str, object],
    engine: str = "fast",
    native: Optional[bool] = None,
    epoch_jobs: Optional[int] = None,
) -> Dict[str, object]:
    """One instrumented sensitivity run: trace + metrics + stall summary.

    Runs the §4.3.3 default configuration on the selected ``engine``
    with a :class:`TraceRecorder`, :class:`MetricsRegistry`, and
    :class:`InvariantMonitor` attached, and writes ``trace.json``
    (Chrome trace_event format, one lane per pipeline x stage — open in
    Perfetto), ``trace.jsonl``, ``trace_canonical.json`` (the
    order-independent :func:`canonical_form`, diffable across engines),
    ``metrics.json``, ``alerts.jsonl``, and ``trace_summary.txt`` into
    ``out``. The vector engine reconstructs an identical event stream
    from its epoch schedule, so every artifact — and the returned block
    that lands in ``results.json`` — is byte-identical across engines.
    """
    from ..mp5 import ENGINES
    from ..mp5.config import MP5Config
    from ..obs import (
        InvariantMonitor,
        MetricsRegistry,
        TraceRecorder,
        canonical_form,
        render_trace_summary,
        summarize_trace,
        write_chrome,
        write_jsonl,
    )
    from ..workloads.synthetic import make_sensitivity_program, sensitivity_trace

    params = dict(DEFAULTS)
    program = make_sensitivity_program(
        num_stateful=params["num_stateful"],
        register_size=params["register_size"],
        num_stages=params["num_stages"],
    )
    trace = sensitivity_trace(
        int(knobs["num_packets"]),
        params["num_pipelines"],
        params["num_stateful"],
        params["register_size"],
        num_ports=params["num_ports"],
    )
    recorder = TraceRecorder()
    metrics = MetricsRegistry(window=100)
    monitor = InvariantMonitor()
    stats, _ = ENGINES[engine](
        program,
        trace,
        MP5Config(num_pipelines=params["num_pipelines"]),
        recorder=recorder,
        metrics=metrics,
        monitor=monitor,
        native=native,
        epoch_jobs=epoch_jobs,
    )
    write_chrome(recorder.events, out / "trace.json")
    write_jsonl(recorder.events, out / "trace.jsonl")
    (out / "trace_canonical.json").write_text(
        json.dumps(canonical_form(recorder.events), sort_keys=True) + "\n"
    )
    metrics.save(out / "metrics.json")
    health = monitor.health_report()
    monitor.alerts.save(
        out / "alerts.jsonl",
        meta={"ticks": stats.ticks, "verdict": health.verdict},
    )
    summary_text = render_trace_summary(summarize_trace(recorder.events))
    (out / "trace_summary.txt").write_text(summary_text + "\n")
    return {
        "trace": "trace.json",
        "trace_jsonl": "trace.jsonl",
        "trace_canonical": "trace_canonical.json",
        "metrics": "metrics.json",
        "alerts": "alerts.jsonl",
        "trace_summary": "trace_summary.txt",
        "events": len(recorder.events),
        "health": health.to_dict(),
    }


def run_all(
    out_dir: Optional[str] = None,
    scale: str = "full",
    progress: Optional[Callable[[str], None]] = None,
    jobs: Optional[int] = None,
    observe: bool = False,
    engine: Optional[str] = None,
    native: Optional[bool] = None,
    epoch_jobs: Optional[int] = None,
) -> Dict[str, str]:
    """Regenerate every artifact; returns {artifact: rendered text}.

    When ``out_dir`` is given, writes one ``.txt`` per artifact and a
    ``results.json`` with the structured numbers. ``jobs`` fans the
    Figure 7 sweeps and Figure 8 out over worker processes (see
    :mod:`repro.harness.parallel`); artifacts are identical at any job
    count, so ``results.json`` can be diffed across serial and parallel
    runs. ``observe`` additionally records one instrumented run (trace,
    metrics, monitor alerts, stall summary) on the selected engine into
    ``out_dir`` — off by default so ``results.json`` stays
    byte-identical with earlier releases. The vector engine
    reconstructs the identical event stream from its epoch schedule, so
    the instrumented artifacts also diff clean across engines.
    ``engine`` selects the simulation engine for the Figure 7 sweeps
    and Figure 8 (``dense``/``fast``/``vector``; default: the scale's
    preference — ``vector`` at ``scale=large``/``xlarge``, else
    ``fast``). All engines produce identical numbers, so the choice
    never appears in ``results.json`` and outputs diff clean across
    engines. ``native`` and ``epoch_jobs`` forward to the vector
    engine's fused-kernel tier and epoch-parallel executor (ignored by
    the scalar engines); both are exact, so they never change
    ``results.json`` either — only the wall clock. ``native=None``
    defers to the scale's preference (on at ``xlarge``).
    """
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}")
    knobs = SCALES[scale]
    if engine is None:
        engine = str(knobs.get("engine", "fast"))
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {sorted(ENGINES)}")
    if native is None:
        native = knobs.get("native")
    say = progress or (lambda _msg: None)

    sweep_settings = SweepSettings(
        num_packets=int(
            knobs.get("sensitivity_packets", knobs["num_packets"])
        ),
        seeds=knobs["seeds"],
        engine=engine,
        native=native,
        epoch_jobs=epoch_jobs,
    )
    # The microbenchmarks always run the fast engine: they depend on
    # record_access_order and static-shard configurations, which are
    # outside the vector engine's supported envelope.
    micro_settings = MicrobenchSettings(
        num_packets=int(knobs.get("micro_packets", knobs["num_packets"])),
        seeds=knobs["micro_seeds"],
    )
    app_settings = RealAppSettings(
        num_packets=knobs["num_packets"],
        seeds=knobs["seeds"],
        engine=engine,
        native=native,
        epoch_jobs=epoch_jobs,
    )

    artifacts: Dict[str, str] = {}
    structured: Dict[str, object] = {"scale": scale}

    say("Table 1 (area/clock/SRAM)")
    cells = run_table1()
    artifacts["table1"] = render_table1(cells)
    structured["table1"] = [asdict(c) for c in cells]

    say("§4.3.2 microbenchmarks (D2/D3/D4)")
    started = time.time()
    d2 = run_d2(micro_settings)
    d4 = run_d4(micro_settings)
    d3 = run_d3(micro_settings)
    artifacts["microbench"] = render_microbench(d2, d4, d3)
    structured["d2"] = [asdict(r) for r in d2]
    structured["d3"] = asdict(d3)
    structured["d4"] = asdict(d4)
    say(f"  done in {time.time() - started:.0f}s")

    for panel, runner in (
        ("fig7a", sweep_pipelines),
        ("fig7b", sweep_stateful_stages),
        ("fig7c", sweep_register_size),
        ("fig7d", sweep_packet_size),
    ):
        say(f"Figure {panel[-2:]}")
        points = runner(sweep_settings, jobs=jobs)
        artifacts[panel] = render_sweep(points, panel[-2:])
        structured[panel] = [asdict(p) for p in points]

    say("Figure 8 (real applications)")
    fig8 = run_figure8(settings=app_settings, jobs=jobs)
    artifacts["fig8"] = render_figure8(fig8)
    structured["fig8"] = {
        app: [asdict(p) for p in points] for app, points in fig8.items()
    }

    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name, text in artifacts.items():
            (out / f"{name}.txt").write_text(text + "\n")
        if observe:
            say("observability run (trace + metrics)")
            structured["observability"] = _observability_run(
                out, knobs, engine=engine, native=native,
                epoch_jobs=epoch_jobs,
            )
        (out / "results.json").write_text(json.dumps(structured, indent=2))
        say(f"wrote {len(artifacts)} artifacts to {out}/")
    elif observe:
        raise ValueError("observe=True needs out_dir to write the trace into")
    return artifacts
