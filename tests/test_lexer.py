"""Tests for the Domino lexer."""

import pytest

from repro.domino import Token, TokenType, tokenize
from repro.errors import DominoSyntaxError


def types(source):
    return [t.type for t in tokenize(source)][:-1]  # strip EOF


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_whitespace_only_yields_only_eof(self):
        assert len(tokenize("  \n\t  \r\n")) == 1

    def test_integer_literal(self):
        (tok,) = tokenize("42")[:-1]
        assert tok.type is TokenType.INT_LITERAL
        assert tok.value == 42

    def test_hex_literal(self):
        (tok,) = tokenize("0x1F")[:-1]
        assert tok.value == 31

    def test_identifier(self):
        (tok,) = tokenize("counter_1")[:-1]
        assert tok.type is TokenType.IDENT
        assert tok.text == "counter_1"

    def test_identifier_with_leading_underscore(self):
        (tok,) = tokenize("_tmp")[:-1]
        assert tok.type is TokenType.IDENT

    def test_keywords_not_identifiers(self):
        assert types("struct int void if else") == [
            TokenType.KW_STRUCT,
            TokenType.KW_INT,
            TokenType.KW_VOID,
            TokenType.KW_IF,
            TokenType.KW_ELSE,
        ]

    def test_keyword_prefix_is_identifier(self):
        (tok,) = tokenize("iffy")[:-1]
        assert tok.type is TokenType.IDENT


class TestOperators:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("==", TokenType.EQ),
            ("!=", TokenType.NEQ),
            ("<=", TokenType.LEQ),
            (">=", TokenType.GEQ),
            ("&&", TokenType.AND),
            ("||", TokenType.OR),
            ("<<", TokenType.SHL),
            (">>", TokenType.SHR),
        ],
    )
    def test_two_char_operators(self, text, expected):
        (tok,) = tokenize(text)[:-1]
        assert tok.type is expected

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("=", TokenType.ASSIGN),
            ("+", TokenType.PLUS),
            ("%", TokenType.PERCENT),
            ("?", TokenType.QUESTION),
            (":", TokenType.COLON),
            ("^", TokenType.BIT_XOR),
        ],
    )
    def test_one_char_operators(self, text, expected):
        (tok,) = tokenize(text)[:-1]
        assert tok.type is expected

    def test_two_char_preferred_over_one_char(self):
        # "<=" must not lex as "<" then "="
        assert types("a<=b") == [TokenType.IDENT, TokenType.LEQ, TokenType.IDENT]

    def test_adjacent_equals(self):
        # "===" lexes as "==" then "="
        assert types("===") == [TokenType.EQ, TokenType.ASSIGN]


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a // trailing") == ["a"]

    def test_block_comment_skipped(self):
        assert texts("a /* x y z */ b") == ["a", "b"]

    def test_multiline_block_comment(self):
        assert texts("a /* line1\nline2\n*/ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(DominoSyntaxError, match="unterminated"):
            tokenize("a /* never closed")

    def test_slash_alone_is_division(self):
        assert types("a / b") == [TokenType.IDENT, TokenType.SLASH, TokenType.IDENT]


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_column_resets_after_newline(self):
        tokens = tokenize("aa bb\ncc")
        assert tokens[2].line == 2
        assert tokens[2].column == 1


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(DominoSyntaxError, match="unexpected character"):
            tokenize("a @ b")

    def test_error_carries_position(self):
        with pytest.raises(DominoSyntaxError) as exc:
            tokenize("ab\n  $")
        assert exc.value.line == 2
        assert exc.value.column == 3

    def test_malformed_hex(self):
        with pytest.raises(DominoSyntaxError):
            tokenize("0x")


class TestTokenValue:
    def test_value_of_non_literal_raises(self):
        tok = Token(TokenType.IDENT, "x", 1, 1)
        with pytest.raises(ValueError):
            _ = tok.value

    def test_realistic_program_token_count(self):
        source = "struct P { int a; };\nvoid f(struct P p) { p.a = 1; }"
        tokens = tokenize(source)
        assert tokens[-1].type is TokenType.EOF
        assert len(tokens) > 15
