"""Epoch/residue-class parallel execution must be invisible in results.

Phase A (:func:`repro.mp5.epochs.build_epoch_schedule`) fixes the run's
task DAG before any stateful service executes, so the DAG — and every
downstream artifact — must be identical at any worker count and on any
kernel tier. These tests pin that contract: schedule determinism,
residue-partition disjointness/coverage, byte-identical ``results.json``
across ``epoch_jobs`` and ``native`` settings, graceful rollback when
the worker pool breaks mid-plan, and the deduplicated fallback warning.
"""

import numpy as np
import pytest

import repro.harness.parallel as par
from repro.cli import main
from repro.harness.parallel import shutdown_pool
from repro.harness.runall import SCALES, run_all
from repro.mp5 import VectorSwitch
from repro.mp5.vector import _warn_fallback, reset_fallback_warnings
from repro.workloads import clone_packets
from repro.workloads.synthetic import make_sensitivity_program, sensitivity_trace


@pytest.fixture(autouse=True)
def _teardown():
    reset_fallback_warnings()
    yield
    reset_fallback_warnings()
    shutdown_pool()


def _run_switch(num_packets=3000, seed=0, native=None, epoch_jobs=None):
    program = make_sensitivity_program(2, 64)
    switch = VectorSwitch(program, None, native=native, epoch_jobs=epoch_jobs)
    stats = switch.run(sensitivity_trace(num_packets, 4, 2, 64, seed=seed))
    return switch, stats


# ---------------------------------------------------------------------------
# Schedule determinism
# ---------------------------------------------------------------------------


def test_dag_signature_deterministic_across_runs():
    a, _ = _run_switch()
    b, _ = _run_switch()
    assert a._last_schedule.dag_signature() == b._last_schedule.dag_signature()


@pytest.mark.parametrize("epoch_jobs", (None, 1, 2, 4))
def test_dag_signature_independent_of_workers(epoch_jobs):
    base, _ = _run_switch()
    other, _ = _run_switch(epoch_jobs=epoch_jobs)
    assert (
        other._last_schedule.dag_signature()
        == base._last_schedule.dag_signature()
    )


def test_dag_signature_independent_of_native_tier():
    base, _ = _run_switch()
    native, _ = _run_switch(native=True)
    assert (
        native._last_schedule.dag_signature()
        == base._last_schedule.dag_signature()
    )


def test_dag_signature_varies_with_input():
    a, _ = _run_switch(seed=0)
    b, _ = _run_switch(seed=1)
    assert a._last_schedule.dag_signature() != b._last_schedule.dag_signature()


# ---------------------------------------------------------------------------
# Residue partition
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("nparts", (2, 3, 4))
def test_partition_covers_stream_disjointly(nparts):
    switch, _ = _run_switch()
    sched = switch._last_schedule
    checked = 0
    for pi, idx_col in enumerate(sched.acc_idx):
        if idx_col is None:
            continue
        rows_all, _pops = sched.plan_stream(pi)
        parts = sched.partition(pi, nparts)
        seen = np.concatenate([rows for rows, _i, _o in parts])
        # Every row exactly once (order may differ: parts are
        # residue-major, the stream is epoch-major).
        assert sorted(seen.tolist()) == sorted(rows_all.tolist())
        for w_rows, w_idx, offsets in parts:
            residues = set((w_idx % nparts).tolist())
            assert len(residues) == 1  # one residue class per part
            assert np.array_equal(w_idx, idx_col[w_rows])
            assert offsets[0] == 0 and offsets[-1] == w_rows.shape[0]
            assert np.all(np.diff(offsets) > 0)
        checked += 1
    assert checked  # the sensitivity program has indexed plans


# ---------------------------------------------------------------------------
# End-to-end byte identity
# ---------------------------------------------------------------------------


def test_stats_identical_across_workers_and_tiers():
    base_switch, base_stats = _run_switch(num_packets=6000)
    base_regs = dict(base_switch.registers)
    for kwargs in (
        dict(native=True),
        dict(epoch_jobs=2),
        dict(native=True, epoch_jobs=2),
        dict(epoch_jobs=4),
    ):
        switch, stats = _run_switch(num_packets=6000, **kwargs)
        assert stats == base_stats, kwargs
        assert dict(switch.registers) == base_regs, kwargs


def test_runall_results_identical_across_epoch_settings(tmp_path):
    paths = {}
    for name, kwargs in (
        ("base", dict()),
        ("native", dict(native=True)),
        ("jobs2", dict(epoch_jobs=2)),
        ("native_jobs2", dict(native=True, epoch_jobs=2)),
    ):
        out = tmp_path / name
        run_all(out_dir=str(out), scale="tiny", engine="vector", **kwargs)
        paths[name] = (out / "results.json").read_bytes()
    assert len(set(paths.values())) == 1


def test_xlarge_scale_defined():
    knobs = SCALES["xlarge"]
    assert knobs["num_packets"] == 1_000_000
    assert knobs["engine"] == "vector"
    assert knobs["native"] is True
    assert knobs["sensitivity_packets"] < knobs["num_packets"]


# ---------------------------------------------------------------------------
# Pool failure rollback
# ---------------------------------------------------------------------------


def test_pool_breakage_rolls_back_and_reexecutes(monkeypatch):
    """A mid-plan pool failure must not double-apply register updates:
    the executor restores its snapshot and redoes the plan serially."""
    base_switch, base_stats = _run_switch(num_packets=12000)

    def boom(*args, **kwargs):
        raise par.PoolBroken("worker died")

    monkeypatch.setattr(par, "pool_map_strict", boom)
    switch, stats = _run_switch(num_packets=12000, epoch_jobs=2)
    assert stats == base_stats
    assert dict(switch.registers) == dict(base_switch.registers)


# ---------------------------------------------------------------------------
# Fallback warning dedup
# ---------------------------------------------------------------------------


def test_warn_fallback_prints_once(capsys):
    _warn_fallback("vector engine: test message")
    _warn_fallback("vector engine: test message")
    assert capsys.readouterr().err.count("test message") == 1
    _warn_fallback("vector engine: another message")
    err = capsys.readouterr().err
    assert "another message" in err and "test message" not in err


def test_warn_fallback_reset(capsys):
    _warn_fallback("vector engine: resettable")
    reset_fallback_warnings()
    _warn_fallback("vector engine: resettable")
    assert capsys.readouterr().err.count("resettable") == 2


def test_cli_invocations_each_warn_once(capsys):
    """main() resets the warning budget, so two CLI runs in one process
    warn once each — not once total, not twice per run. Observability
    no longer falls back, so the faulted run is the warning path."""
    argv = [
        "run", "heavy_hitter", "--packets", "200",
        "--engine", "vector", "--faults", "examples/faults/slowdown.json",
    ]
    for _ in range(2):
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert err.count("falling back to the fast engine") == 1
