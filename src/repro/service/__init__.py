"""Long-lived switch service: daemon, HTTP control plane, client.

Turns the batch reproduction into a system that faces sustained
traffic: a persistent MP5 switch (:class:`SwitchService`,
:mod:`repro.service.daemon`) ingests packet batches through a bounded
queue and is reconfigured at runtime — hot program swaps, fault
schedules, monitor toggles, remap retunes — over a stdlib-only
HTTP/JSON control plane (:mod:`repro.service.http`). The blocking
:class:`~repro.service.client.ServiceClient` drives it from scripts and
tests; the ``serve`` CLI subcommand runs it in the foreground.

The central guarantee is *served determinism*: every completed segment
(one program on one engine between reconfigurations) produces results
byte-identical to an offline ``run`` over the same packets, no matter
how the arrivals were batched or when control requests interleaved.
See ``docs/service.md`` for the API reference and the hot-swap
lifecycle.
"""

from .daemon import (
    ServiceError,
    ServiceThread,
    SwitchService,
    packet_from_json,
    render_payload,
    segment_payload,
)

__all__ = [
    "ServiceError",
    "ServiceThread",
    "SwitchService",
    "packet_from_json",
    "render_payload",
    "segment_payload",
]
