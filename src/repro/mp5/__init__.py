"""MP5 core: the multi-pipelined programmable switch (architecture + runtime).

Public surface::

    from repro.mp5 import MP5Switch, MP5Config, run_mp5

    program = compile_program("flowlet")
    stats, registers = run_mp5(program, trace, MP5Config(num_pipelines=4))
"""

from .config import MP5Config
from .crossbar import CrossbarTelemetry
from .fifo import IdealOrderBuffer, Slot, StageFifoGroup
from .packet import DataPacket, PhantomPacket, StateAccess
from .partition import LogicalPartition, PartitionedMP5, PartitionResult
from .reference import ReferenceSwitch, run_mp5_reference
from .sharding import ShardedArray, ShardingRuntime
from .stats import C1Report, SwitchStats, c1_metrics, c1_violations
from .switch import FLOW_ORDER_ARRAY, MP5Switch, run_mp5

__all__ = [
    "CrossbarTelemetry",
    "DataPacket",
    "FLOW_ORDER_ARRAY",
    "IdealOrderBuffer",
    "LogicalPartition",
    "PartitionResult",
    "PartitionedMP5",
    "MP5Config",
    "MP5Switch",
    "PhantomPacket",
    "ReferenceSwitch",
    "ShardedArray",
    "ShardingRuntime",
    "Slot",
    "StageFifoGroup",
    "StateAccess",
    "C1Report",
    "SwitchStats",
    "c1_metrics",
    "c1_violations",
    "run_mp5",
    "run_mp5_reference",
]
