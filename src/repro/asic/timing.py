"""Clock-feasibility model (Table 1's ">= 1 GHz" rows, §4.2).

The paper's synthesis meets 1 GHz — the clock of state-of-the-art
multi-terabit pipelines — for every configuration from 2x4 to 8x16. The
dominant added combinational path is the crossbar's select-and-mux tree,
whose depth grows with log2(k); FIFO head comparison adds a shallow
log2(k) comparator tree as well. We model achievable frequency as a base
15 nm frequency degraded per mux/comparator level and expose the same
feasibility question Table 1 answers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

BASE_FREQUENCY_GHZ = 1.6  # headroom of the 15 nm library at this logic depth
MUX_LEVEL_PENALTY_GHZ = 0.08  # per crossbar select level (log2 k)
COMPARATOR_PENALTY_GHZ = 0.04  # per FIFO timestamp-compare level (log2 k)
TARGET_FREQUENCY_GHZ = 1.0  # state-of-the-art pipeline clock (§4.2)


@dataclass(frozen=True)
class TimingReport:
    pipelines: int
    stages: int
    frequency_ghz: float

    @property
    def meets_1ghz(self) -> bool:
        return self.frequency_ghz >= TARGET_FREQUENCY_GHZ


def achievable_frequency_ghz(pipelines: int, stages: int) -> float:
    """Estimated post-synthesis clock for a (k, s) configuration.

    The stage count barely affects the critical path (stages are
    pipelined against each other); pipeline count adds mux/comparator
    levels. The model is calibrated so every Table 1 configuration
    clears 1 GHz, with headroom shrinking as k grows.
    """
    if pipelines < 1 or stages < 1:
        raise ConfigError("pipelines and stages must be >= 1")
    levels = math.ceil(math.log2(max(pipelines, 2)))
    freq = (
        BASE_FREQUENCY_GHZ
        - MUX_LEVEL_PENALTY_GHZ * levels
        - COMPARATOR_PENALTY_GHZ * levels
        - 0.002 * stages  # wiring pressure from wider stage fan-out
    )
    return round(max(freq, 0.05), 4)


def timing_report(pipelines: int, stages: int) -> TimingReport:
    return TimingReport(
        pipelines=pipelines,
        stages=stages,
        frequency_ghz=achievable_frequency_ghz(pipelines, stages),
    )


def max_pipelines_at_1ghz(stages: int = 16, limit: int = 1024) -> int:
    """Scalability probe (§3.5.3): largest k that still meets 1 GHz."""
    best = 1
    k = 1
    while k <= limit:
        if timing_report(k, stages).meets_1ghz:
            best = k
        k *= 2
    return best
