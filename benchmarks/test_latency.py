"""Latency extension benchmark: pipeline latency vs offered load.

Not a paper figure — the paper reports throughput and queue maxima — but
the latency distribution is the flip side of the same queueing behaviour
and validates the engine against queueing theory: latency should sit at
the pipeline transit time for admissible load and grow hockey-stick as
offered load approaches a program's fundamental limit (§3.5.2).
"""

import numpy as np

from repro.analysis import md1_mean_in_system
from repro.harness import format_table
from repro.mp5 import MP5Config, run_mp5
from repro.workloads import make_sensitivity_program, sensitivity_trace

from conftest import bench_params, run_once

LOADS = (0.3, 0.5, 0.7, 0.9)


def test_latency_vs_load(benchmark, show):
    params = bench_params()
    program = make_sensitivity_program(1, 4096)
    depth = 16

    def sweep():
        rows = []
        for load in LOADS:
            trace = sensitivity_trace(
                params["num_packets"], 4, 1, 4096, pattern="uniform", seed=0
            )
            for pkt in trace:
                pkt.arrival = pkt.arrival / load
            stats, _ = run_mp5(program, trace, MP5Config(num_pipelines=4))
            rows.append(
                (
                    load,
                    stats.mean_latency,
                    stats.latency_percentile(50),
                    stats.latency_percentile(99),
                    stats.throughput_normalized(),
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    show(
        format_table(
            ["load", "mean", "p50", "p99", "throughput"],
            rows,
            title="Latency (ticks) vs offered load — 16-stage pipeline, "
            "1 stateful stage",
        )
    )

    by_load = {r[0]: r for r in rows}
    # Admissible load: latency ~ pipeline transit, stable throughput.
    assert by_load[0.3][1] < depth + 2
    for load in LOADS:
        assert by_load[load][4] > 0.98  # all loads below the limit
    # Latency grows monotonically with load, convexly at the tail.
    means = [by_load[load][1] for load in LOADS]
    assert means == sorted(means)
    # Queueing excess at 0.9 should exceed the M/D/1 prediction at 0.5
    # by a wide margin (convexity), and p99 >> p50 at high load.
    assert (by_load[0.9][1] - depth) > (by_load[0.5][1] - depth) * 2
    assert by_load[0.9][3] > by_load[0.9][2]
    # Sanity anchor against theory: the excess at 0.7 is within a small
    # factor of the M/D/1 in-system prediction (binomial arrivals queue
    # less than Poisson, so we bound from above only).
    assert (by_load[0.7][1] - depth) < 6 * md1_mean_in_system(0.7)
