"""Online invariant monitors for the MP5 engines.

:class:`InvariantMonitor` watches a run *while it executes*: it
implements the same duck-typed emitter surface as
:class:`~repro.obs.trace.TraceRecorder` (so the engine feeds it through
the existing single ``obs`` attribute check — zero cost when detached)
plus two tick-boundary hooks (``end_tick``/``end_run``) the engines
call when a monitor is attached. From that stream it checks, online:

* **c1_order** — per-state arrival-order access: the data packets
  popped for one ``(stage, array, index)`` must carry ascending packet
  ids among survivors (C1, §3.2).
* **phantom_pairing** — every phantom emitted is eventually matched by
  its data packet, counted lost by the channel, or expired when the
  packet drops; a packet may never egress with phantoms outstanding.
* **conservation** — injected = in-flight + egressed + dropped, the
  monitor's event-derived counts agree with the engine's ``_live`` and
  ``SwitchStats`` bookkeeping, and per-reason drop counts sum to the
  drop total.
* **shard_exclusivity** — the index-to-pipeline maps only change on
  remap ticks, stay in range, keep pinned arrays whole, and never move
  an index that had packets in flight (the §3.4 safety rule).
* **fifo_sanity** — each FIFO group's incremental occupancy counters
  match its ring buffers, never go negative, respect the high-water
  mark, and no ring exceeds the largest capacity it was granted.
* **lossless_delivery** — no data packet is lost. The first drop per
  reason raises a critical alert tagged with the fault windows active
  at that tick (via :meth:`repro.faults.FaultInjector.active_windows`),
  so a chaos run reports *when* and *why* delivery degraded.

Violations become ``critical`` :class:`~repro.obs.alerts.Alert`
records (deduplicated per invariant + site so a persistent breakage
cannot flood the log; totals are kept in :attr:`violations`); the
attached :class:`~repro.obs.alerts.AnomalyDetector` contributes
``warning`` alerts at window boundaries. Every check is a function of
the event stream and tick-boundary switch state only — never of
within-tick packet visit order — so the fast and reference engines
produce identical alert streams (asserted modulo
:func:`~repro.obs.events.canonical_form` by the differential tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import ConfigError
from .alerts import (
    Alert,
    AlertLog,
    AnomalyDetector,
    DetectorConfig,
    SEVERITY_CRITICAL,
    SEVERITY_INFO,
)
from .health import HealthReport
from .metrics import MetricsRegistry

#: The invariants the monitor checks, in documentation order.
INVARIANTS = (
    "c1_order",
    "phantom_pairing",
    "conservation",
    "shard_exclusivity",
    "fifo_sanity",
    "lossless_delivery",
)


class TeeEmitter:
    """Fan one engine event stream out to several emitter sinks (e.g. a
    TraceRecorder and an InvariantMonitor on the same run) behind the
    engine's single ``obs`` attribute."""

    __slots__ = ("sinks",)

    def __init__(self, *sinks):
        self.sinks = sinks

    def ingress(self, *args):
        for sink in self.sinks:
            sink.ingress(*args)

    def phantom_emit(self, *args):
        for sink in self.sinks:
            sink.phantom_emit(*args)

    def phantom_loss(self, *args):
        for sink in self.sinks:
            sink.phantom_loss(*args)

    def phantom_match(self, *args):
        for sink in self.sinks:
            sink.phantom_match(*args)

    def steer(self, *args):
        for sink in self.sinks:
            sink.steer(*args)

    def fifo_block(self, *args):
        for sink in self.sinks:
            sink.fifo_block(*args)

    def fifo_pop(self, *args):
        for sink in self.sinks:
            sink.fifo_pop(*args)

    def service(self, *args):
        for sink in self.sinks:
            sink.service(*args)

    def ecn_mark(self, *args):
        for sink in self.sinks:
            sink.ecn_mark(*args)

    def remap(self, *args):
        for sink in self.sinks:
            sink.remap(*args)

    def egress(self, *args):
        for sink in self.sinks:
            sink.egress(*args)

    def drop(self, *args):
        for sink in self.sinks:
            sink.drop(*args)

    def fault_start(self, *args):
        for sink in self.sinks:
            sink.fault_start(*args)

    def fault_end(self, *args):
        for sink in self.sinks:
            sink.fault_end(*args)

    def emergency_remap(self, *args):
        for sink in self.sinks:
            sink.emergency_remap(*args)


_LOSS_SUBSYSTEM = {
    "crossbar_down": "crossbar",
    "no_phantom": "phantom_channel",
    "phantom_fifo_full": "phantom_channel",
    "fifo_full": "fifo",
    "starvation_preemption": "scheduler",
}


class InvariantMonitor:
    """Streaming invariant checker + anomaly detector for one run.

    Construct one per run, pass it to ``run_mp5(..., monitor=...)`` /
    ``run_mp5_reference(..., monitor=...)`` or attach directly with
    ``switch.attach_observability(monitor=...)``, then read
    :attr:`alerts` and :meth:`health_report` after the run.
    """

    def __init__(self, detector_config: Optional[DetectorConfig] = None):
        config = detector_config or DetectorConfig()
        self.alerts = AlertLog()
        self.detector = AnomalyDetector(config)
        self.registry = MetricsRegistry(window=config.window)
        self.violations: Dict[str, int] = {}
        self.injected = 0
        self.egressed = 0
        self.dropped = 0
        self.drops_by_reason: Dict[str, int] = {}
        self.final_tick = 0
        self.drained = True
        # pkt -> {stage: (array, index)} learned from phantom emissions;
        # the C1 key of the access the packet performs at that stage.
        self._acc: Dict[int, Dict[int, Tuple[str, Optional[int]]]] = {}
        # (stage, array, index) -> highest pkt id popped so far. Lane
        # fallback keys ("lane", pipe, stage) cover phantom-less runs.
        self._c1_high: Dict[Tuple, int] = {}
        # pkt -> phantoms emitted but not yet matched/lost/expired.
        self._outstanding: Dict[int, int] = {}
        # pkt ids that already egressed or dropped (a fault-delayed
        # phantom may be reported lost after its packet finalized).
        self._finalized: Set[int] = set()
        # pkt -> tick it entered a stage FIFO (wait accounting).
        self._queued: Dict[int, int] = {}
        self._wait_hist = self.registry.histogram("phantom_wait")
        # Alert dedup keys already raised (one alert per invariant+site).
        self._alerted: Set[Tuple] = set()
        # Drops observed this tick, by reason (flushed by end_tick).
        self._tick_drops: Dict[str, int] = {}
        # Fault windows currently open, from fault_start/fault_end.
        self._active_faults: Dict[Tuple, Dict] = {}
        # Shard-map state for the exclusivity check.
        self._shard_maps: Dict[str, np.ndarray] = {}
        self._inflight_prev: Dict[str, np.ndarray] = {}
        self._remap_tick = False
        # Largest capacity each FIFO group was ever granted (None =
        # unbounded at some point; a fifo_shrink fault may later lower
        # ``fifo.capacity`` below the current occupancy legally).
        self._fifo_maxcap: Dict[Tuple[int, int], Optional[int]] = {}
        self._switch = None
        self._last_detector_roll = -1

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def bind(self, switch) -> None:
        """Called by ``attach_observability``: snapshot the shard maps
        and publish the switch's samplers into the private registry the
        anomaly detector reads."""
        if self._switch is not None:
            raise ConfigError(
                "an InvariantMonitor tracks one run; construct a fresh "
                "monitor per switch"
            )
        self._switch = switch
        switch._register_metric_sources(self.registry, latency=False)
        for name, state in switch.sharder.arrays.items():
            self._shard_maps[name] = state.index_to_pipeline.copy()
            self._inflight_prev[name] = state.in_flight.copy()

    # ------------------------------------------------------------------
    # Alert plumbing
    # ------------------------------------------------------------------

    def _fault_context(self) -> List[Dict]:
        if self._switch is not None and self._switch._faults is not None:
            return self._switch._faults.active_windows()
        return sorted(
            self._active_faults.values(),
            key=lambda w: (w["kind"], w.get("pipe") is None, w.get("pipe")),
        )

    def _violation(
        self,
        tick: int,
        invariant: str,
        subsystem: str,
        message: str,
        evidence: Dict,
        dedup=None,
        weight: int = 1,
    ) -> None:
        self.violations[invariant] = self.violations.get(invariant, 0) + weight
        key = (invariant, dedup)
        if key in self._alerted:
            return
        self._alerted.add(key)
        faults = self._fault_context()
        if faults:
            evidence = dict(evidence)
            evidence["active_faults"] = faults
        self.alerts.append(
            Alert(
                severity=SEVERITY_CRITICAL,
                tick=tick,
                subsystem=subsystem,
                kind="invariant_violation" if invariant != "lossless_delivery"
                else "packet_loss",
                message=message,
                invariant=invariant,
                evidence=evidence,
            )
        )

    def _info(
        self, tick: int, subsystem: str, kind: str, message: str, evidence: Dict
    ) -> None:
        self.alerts.append(
            Alert(
                severity=SEVERITY_INFO,
                tick=tick,
                subsystem=subsystem,
                kind=kind,
                message=message,
                evidence=evidence,
            )
        )

    # ------------------------------------------------------------------
    # Engine-facing emitters (TraceRecorder surface)
    # ------------------------------------------------------------------

    def ingress(self, tick, pkt, pipe, port, flow) -> None:
        self.injected += 1

    def phantom_emit(self, tick, pkt, pipe, stage, array, index) -> None:
        table = self._acc.get(pkt)
        if table is None:
            table = self._acc[pkt] = {}
        table[stage] = (array, index)
        self._outstanding[pkt] = self._outstanding.get(pkt, 0) + 1

    def phantom_loss(self, tick, pkt, pipe, stage, array) -> None:
        if pkt in self._finalized:
            return  # delayed phantom of an already-dropped packet
        count = self._outstanding.get(pkt, 0) - 1
        if count < 0:
            self._violation(
                tick,
                "phantom_pairing",
                "phantom_channel",
                f"phantom loss reported for pkt {pkt} with no phantom "
                f"outstanding",
                {"pkt": pkt, "pipe": pipe, "stage": stage, "array": array},
                dedup="loss_without_emit",
            )
            return
        self._outstanding[pkt] = count

    def phantom_match(self, tick, pkt, pipe, stage) -> None:
        self._queued[pkt] = tick
        count = self._outstanding.get(pkt, 0) - 1
        if count < 0:
            self._violation(
                tick,
                "phantom_pairing",
                "phantom_channel",
                f"data packet {pkt} matched a phantom that was never "
                f"emitted",
                {"pkt": pkt, "pipe": pipe, "stage": stage},
                dedup="match_without_emit",
            )
            return
        self._outstanding[pkt] = count

    def steer(self, tick, pkt, src, pipe, stage) -> None:
        self._queued.setdefault(pkt, tick)

    def fifo_block(self, tick, pipe, stage) -> None:
        pass

    def fifo_pop(self, tick, pkt, pipe, stage) -> None:
        entered = self._queued.pop(pkt, tick)
        self._wait_hist.observe(tick - entered)
        table = self._acc.get(pkt)
        access = table.get(stage) if table is not None else None
        if access is not None:
            array, index = access
            if index is None:
                # Array-level accesses carry no in-flight accounting, so
                # a remap may legally interleave them; C1 applies to the
                # per-index states the paper shards.
                return
            key = (stage, array, index)
        else:
            # Phantom-less run: within one FIFO group, pops follow the
            # push timestamps, which follow arrival order.
            key = ("lane", pipe, stage)
        high = self._c1_high.get(key, -1)
        if pkt < high:
            self._violation(
                tick,
                "c1_order",
                "fifo",
                f"packet {pkt} serviced after packet {high} at "
                f"{key!r} — arrival-order state access broken",
                {
                    "pkt": pkt,
                    "prev_pkt": high,
                    "pipe": pipe,
                    "stage": stage,
                    "key": list(key),
                },
                dedup=key,
            )
        else:
            self._c1_high[key] = pkt

    def service(self, tick, pkt, pipe, stage) -> None:
        pass

    def ecn_mark(self, tick, pkt, pipe, stage) -> None:
        pass

    def remap(self, tick, moves) -> None:
        self._remap_tick = True

    def egress(self, tick, pkt, latency) -> None:
        self.egressed += 1
        self._finalized.add(pkt)
        self._queued.pop(pkt, None)
        self._acc.pop(pkt, None)
        outstanding = self._outstanding.pop(pkt, 0)
        if outstanding:
            self._violation(
                tick,
                "phantom_pairing",
                "phantom_channel",
                f"packet {pkt} egressed with {outstanding} phantom(s) "
                f"never matched or accounted lost",
                {"pkt": pkt, "outstanding": outstanding},
                dedup="egress_outstanding",
            )

    def drop(self, tick, pkt, reason) -> None:
        self.dropped += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        self._finalized.add(pkt)
        self._queued.pop(pkt, None)
        self._acc.pop(pkt, None)
        self._outstanding.pop(pkt, None)  # expired with the packet
        # Loss alerts are raised at the tick boundary from the per-tick
        # aggregate: which packet dropped first within a tick depends on
        # engine-internal visit order, and alert streams must not.
        self._tick_drops[reason] = self._tick_drops.get(reason, 0) + 1

    def fault_start(self, tick, kind, pipe, stage) -> None:
        window = {"kind": kind, "pipe": pipe, "stage": stage, "start": tick}
        self._active_faults[(kind, pipe, stage)] = window
        self._info(
            tick,
            "faults",
            "fault_start",
            f"fault window opened: {kind} "
            f"(pipe={pipe}, stage={stage})",
            dict(window),
        )

    def fault_end(self, tick, kind, pipe, stage) -> None:
        window = self._active_faults.pop(
            (kind, pipe, stage), {"kind": kind, "pipe": pipe, "stage": stage}
        )
        evidence = dict(window)
        evidence["end"] = tick
        self._info(
            tick,
            "faults",
            "fault_end",
            f"fault window closed: {kind} "
            f"(pipe={pipe}, stage={stage})",
            evidence,
        )

    def emergency_remap(self, tick, pipe, moved, deferred, attempt) -> None:
        self._remap_tick = True
        self._info(
            tick,
            "sharding",
            "emergency_remap",
            f"emergency remap evacuated pipeline {pipe}: "
            f"{moved} indices moved, {deferred} deferred "
            f"(attempt {attempt})",
            {
                "pipe": pipe,
                "moved": moved,
                "deferred": deferred,
                "attempt": attempt,
            },
        )

    # ------------------------------------------------------------------
    # Tick-boundary checks (called by both engines' _step)
    # ------------------------------------------------------------------

    def end_tick(self, tick: int, switch) -> None:
        if self._tick_drops:
            for reason in sorted(self._tick_drops):
                count = self._tick_drops[reason]
                self._violation(
                    tick,
                    "lossless_delivery",
                    _LOSS_SUBSYSTEM.get(reason, "switch"),
                    f"{count} data packet(s) dropped ({reason}) this "
                    f"tick — first loss for this reason",
                    {"reason": reason, "count": count},
                    dedup=("drop", reason),
                    weight=count,
                )
            self._tick_drops.clear()
        self._check_conservation(tick, switch)
        self._check_fifos(tick, switch)
        if self._remap_tick:
            self._remap_tick = False
            self._check_shard_maps(tick, switch)
        for name, state in switch.sharder.arrays.items():
            np.copyto(self._inflight_prev[name], state.in_flight)
        self.registry.maybe_roll(tick)
        rolled = self.registry._last_roll
        if rolled == tick and rolled != self._last_detector_roll:
            self._last_detector_roll = rolled
            for alert in self.detector.examine(self.registry, tick):
                self.alerts.append(alert)

    def _check_conservation(self, tick: int, switch) -> None:
        in_flight = self.injected - self.egressed - self.dropped
        stats = switch.stats
        if in_flight < 0:
            self._violation(
                tick,
                "conservation",
                "engine",
                f"more packets egressed+dropped than injected "
                f"(in-flight {in_flight})",
                {
                    "injected": self.injected,
                    "egressed": self.egressed,
                    "dropped": self.dropped,
                },
                dedup="negative_in_flight",
            )
        if switch._live != in_flight:
            self._violation(
                tick,
                "conservation",
                "engine",
                f"engine live-packet count {switch._live} != "
                f"event-derived in-flight {in_flight}",
                {
                    "live": switch._live,
                    "injected": self.injected,
                    "egressed": self.egressed,
                    "dropped": self.dropped,
                },
                dedup="live_mismatch",
            )
        if stats.egressed != self.egressed or stats.dropped != self.dropped:
            self._violation(
                tick,
                "conservation",
                "engine",
                f"SwitchStats disagrees with the event stream "
                f"(stats egressed={stats.egressed} dropped={stats.dropped}, "
                f"events egressed={self.egressed} dropped={self.dropped})",
                {
                    "stats_egressed": stats.egressed,
                    "stats_dropped": stats.dropped,
                    "egressed": self.egressed,
                    "dropped": self.dropped,
                },
                dedup="stats_mismatch",
            )
        if sum(self.drops_by_reason.values()) != self.dropped:
            self._violation(
                tick,
                "conservation",
                "engine",
                "per-reason drop counts do not sum to the drop total",
                {
                    "by_reason": dict(self.drops_by_reason),
                    "dropped": self.dropped,
                },
                dedup="reason_sum",
            )

    def _check_fifos(self, tick: int, switch) -> None:
        for key, fifo in switch.fifos.items():
            total = fifo._total
            data = fifo._data
            buffers = getattr(fifo, "buffers", None)
            if buffers is not None:
                slots = sum(len(b) for b in buffers)
            else:
                slots = sum(len(q) for q in fifo.queues.values())
            if data < 0 or data > total or total != slots:
                self._violation(
                    tick,
                    "fifo_sanity",
                    "fifo",
                    f"FIFO {key} occupancy counters inconsistent "
                    f"(total={total} data={data} slots={slots})",
                    {
                        "fifo": list(key),
                        "total": total,
                        "data": data,
                        "slots": slots,
                    },
                    dedup=("counters", key),
                )
            if fifo.peak_occupancy < total:
                self._violation(
                    tick,
                    "fifo_sanity",
                    "fifo",
                    f"FIFO {key} high-water mark {fifo.peak_occupancy} "
                    f"below current occupancy {total}",
                    {
                        "fifo": list(key),
                        "peak": fifo.peak_occupancy,
                        "total": total,
                    },
                    dedup=("peak", key),
                )
            if buffers is None:
                continue  # the ideal buffer is unbounded by design
            capacity = fifo.capacity
            if capacity is None:
                self._fifo_maxcap[key] = None
            elif key not in self._fifo_maxcap:
                self._fifo_maxcap[key] = capacity
            else:
                known = self._fifo_maxcap[key]
                if known is not None and capacity > known:
                    self._fifo_maxcap[key] = capacity
            bound = self._fifo_maxcap[key]
            if bound is not None:
                worst = max(len(b) for b in buffers)
                if worst > bound:
                    self._violation(
                        tick,
                        "fifo_sanity",
                        "fifo",
                        f"FIFO {key} ring holds {worst} slots, above the "
                        f"largest capacity ever granted ({bound})",
                        {
                            "fifo": list(key),
                            "occupancy": worst,
                            "capacity": bound,
                        },
                        dedup=("bound", key),
                    )

    def _check_shard_maps(self, tick: int, switch) -> None:
        k = switch.config.num_pipelines
        for name, state in switch.sharder.arrays.items():
            current = state.index_to_pipeline
            if current.size and (
                int(current.min()) < 0 or int(current.max()) >= k
            ):
                self._violation(
                    tick,
                    "shard_exclusivity",
                    "sharding",
                    f"array {name!r} maps an index to a pipeline outside "
                    f"[0, {k})",
                    {"array": name, "min": int(current.min()),
                     "max": int(current.max())},
                    dedup=("range", name),
                )
            if not state.shardable and current.size and (
                int(current.min()) != int(current.max())
            ):
                self._violation(
                    tick,
                    "shard_exclusivity",
                    "sharding",
                    f"pinned array {name!r} is split across pipelines",
                    {"array": name},
                    dedup=("pinned", name),
                )
            previous = self._shard_maps[name]
            changed = np.nonzero(current != previous)[0]
            if changed.size:
                inflight_prev = self._inflight_prev[name]
                for index in changed:
                    idx = int(index)
                    # A regular remap (phase 6) must see zero in flight
                    # now; an emergency remap (phase 0) sees zero at the
                    # previous tick boundary but injections later in the
                    # same tick may target the new location.
                    if state.in_flight[idx] and inflight_prev[idx]:
                        self._violation(
                            tick,
                            "shard_exclusivity",
                            "sharding",
                            f"array {name!r} index {idx} moved from "
                            f"pipeline {int(previous[idx])} to "
                            f"{int(current[idx])} with packets in flight",
                            {
                                "array": name,
                                "index": idx,
                                "from": int(previous[idx]),
                                "to": int(current[idx]),
                                "in_flight": int(state.in_flight[idx]),
                            },
                            dedup=("in_flight", name),
                        )
                np.copyto(previous, current)

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------

    def end_run(self, tick: int, switch, drained: bool) -> None:
        """Final checks once the run loop exits (called by ``run()``)."""
        self.final_tick = tick
        self.drained = drained
        self.registry.roll(tick)  # close the partial window (no detector
        # pass: a drain tail is not a throughput anomaly)
        if not drained:
            return  # truncated by max_ticks: in-flight state is legal
        if self._outstanding and any(self._outstanding.values()):
            dangling = {
                pkt: count
                for pkt, count in sorted(self._outstanding.items())
                if count
            }
            self._violation(
                tick,
                "phantom_pairing",
                "phantom_channel",
                f"{len(dangling)} packet(s) left phantoms neither matched "
                f"nor accounted lost at end of run",
                {"packets": list(dangling)[:8]},
                dedup="end_outstanding",
            )
        if self.injected != self.egressed + self.dropped:
            self._violation(
                tick,
                "conservation",
                "engine",
                f"drained run does not conserve packets "
                f"(injected={self.injected} egressed={self.egressed} "
                f"dropped={self.dropped})",
                {
                    "injected": self.injected,
                    "egressed": self.egressed,
                    "dropped": self.dropped,
                },
                dedup="final_conservation",
            )
        if self.injected != switch.stats.offered:
            self._violation(
                tick,
                "conservation",
                "engine",
                f"drained run injected {self.injected} of "
                f"{switch.stats.offered} offered packets",
                {
                    "injected": self.injected,
                    "offered": switch.stats.offered,
                },
                dedup="offered",
            )

    # ------------------------------------------------------------------

    def total_violations(self) -> int:
        return sum(self.violations.values())

    def invariant_violations(self) -> int:
        """Violations of the engine-correctness invariants (packet loss
        under faults is expected degradation, not an engine bug)."""
        return sum(
            count
            for name, count in self.violations.items()
            if name != "lossless_delivery"
        )

    def health_report(self) -> HealthReport:
        return HealthReport.from_alerts(
            list(self.alerts),
            ticks=self.final_tick,
            violations=self.violations,
            injected=self.injected,
            egressed=self.egressed,
            dropped=self.dropped,
            drained=self.drained,
        )
