"""Per-stage FIFOs implementing MP5's three queue operations (§3.2).

Each stateful stage input has *k* FIFOs, one per source pipeline, so that
up to *k* packets can enter the stage in the same clock cycle without
contention. Physically each FIFO is a ring buffer; logically the k FIFOs
behave as a single FIFO offering:

* ``push(pkt, fifo_id)``  — append (data or phantom) to a ring buffer's
  tail, timestamping it; full buffer => drop. Phantom positions are
  recorded in a directory keyed by packet id.
* ``insert(pkt, fifo_id)`` — replace the packet's phantom, *in place*,
  with the data packet (the data packet inherits the phantom's position
  and timestamp, i.e. its order). Missing directory entry => drop.
* ``pop()`` — look at the k ring-buffer heads, take the entry with the
  smallest timestamp. A phantom head blocks the pop entirely: packets
  that arrived later must wait for the placeholder's data packet — this
  is the D4 ordering enforcement (and the head-of-line blocking noted as
  practical limitation (2) in §3.5.2).

An :class:`IdealOrderBuffer` variant keeps one virtual FIFO per register
index, removing head-of-line blocking across indexes; it is the queue
model of the "ideal MP5" baseline in §4.3.3.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..errors import ConfigError
from .packet import DataPacket, PhantomPacket

_seq_counter = itertools.count()

Timestamp = Tuple[int, int]  # (tick, global sequence) — unique and ordered


class Slot:
    """One ring-buffer entry. ``payload`` flips from phantom to data when
    ``insert`` replaces the placeholder.

    A plain ``__slots__`` class rather than a dataclass: one is created
    per queued packet. ``is_phantom`` is cached at construction (and
    flipped by ``insert``) rather than recomputed with ``isinstance`` on
    every head inspection — pop scans every ring-buffer head each tick.
    """

    __slots__ = ("timestamp", "payload", "consumed", "is_phantom")

    def __init__(
        self,
        timestamp: Timestamp,
        payload: Union[DataPacket, PhantomPacket],
        consumed: bool = False,
    ):
        self.timestamp = timestamp
        self.payload = payload
        self.consumed = consumed
        self.is_phantom = isinstance(payload, PhantomPacket)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Slot(timestamp={self.timestamp!r}, payload={self.payload!r}, "
            f"consumed={self.consumed!r})"
        )


class StageFifoGroup:
    """The k ring buffers at one (pipeline, stage) input.

    The D4 queue structure (§3.2): one ring buffer per source pipeline,
    popped as a single logical FIFO by minimum timestamp. ``push``
    enqueues a phantom placeholder at the tail; ``insert`` lets the data
    packet claim its phantom's position *and timestamp* in place;
    ``pop`` returns the logical head, blocking the stage while that head
    is still a phantom — this is what enforces C1. Also tracks a phantom
    pkt-id high-water mark so a faulted, late-delivered phantom that
    would invert the survivor order is detected as stale
    (:meth:`stale_phantom`, see :mod:`repro.faults`).
    """

    def __init__(self, num_pipelines: int, capacity: Optional[int] = None):
        if num_pipelines < 1:
            raise ConfigError("need at least one pipeline FIFO")
        if capacity is not None and capacity < 1:
            raise ConfigError("FIFO capacity must be positive (or None)")
        self.num_pipelines = num_pipelines
        self.capacity = capacity
        self.buffers: List[Deque[Slot]] = [deque() for _ in range(num_pipelines)]
        # Directory: packet id -> slot holding its phantom. The paper's
        # directory is indexed by packet id; one outstanding phantom per
        # (packet, stage) holds because a packet accesses at most one
        # array per stage after the MP5 transform.
        self.directory: Dict[int, Slot] = {}
        self.drops_full = 0
        self.drops_no_phantom = 0
        self.peak_occupancy = 0
        # Occupancy counters maintained incrementally on push/insert/pop
        # so telemetry reads are O(1) instead of a per-tick slot sweep.
        # Consumed slots are always phantoms (only expire_phantom marks a
        # slot consumed), so _data never has to track consumption.
        self._total = 0
        self._data = 0
        # Highest phantom pkt_id ever pushed. Injection is arrival-
        # ordered, so phantom pushes normally arrive in ascending pkt_id
        # order; a *fault-delayed* phantom (repro.faults) can show up
        # behind a younger one — stale_phantom detects that, and the
        # channel treats the latecomer as lost rather than let it invert
        # the per-state service order among surviving packets (C1).
        self._max_phantom_pkt_id = -1

    # ------------------------------------------------------------------

    def _stamp(self, tick: int) -> Timestamp:
        return (tick, next(_seq_counter))

    def _note_occupancy(self) -> None:
        if self._total > self.peak_occupancy:
            self.peak_occupancy = self._total

    def occupancy(self) -> int:
        return self._total

    def data_occupancy(self) -> int:
        return self._data

    def stale_phantom(self, pkt_id: int) -> bool:
        """True when a phantom for ``pkt_id`` would queue behind one of a
        younger (later-arrived) packet — delivering it late would break
        arrival-order service."""
        return pkt_id < self._max_phantom_pkt_id

    # ------------------------------------------------------------------
    # The three §3.2 operations
    # ------------------------------------------------------------------

    def push(
        self, pkt: Union[DataPacket, PhantomPacket], fifo_id: int, tick: int
    ) -> bool:
        """Append to the tail of ring buffer ``fifo_id``. Returns False
        (packet dropped) when the buffer is full."""
        buffer = self.buffers[fifo_id]
        if self.capacity is not None and len(buffer) >= self.capacity:
            self.drops_full += 1
            return False
        slot = Slot((tick, next(_seq_counter)), pkt)
        buffer.append(slot)
        total = self._total = self._total + 1
        if slot.is_phantom:
            self.directory[pkt.pkt_id] = slot
            if pkt.pkt_id > self._max_phantom_pkt_id:
                self._max_phantom_pkt_id = pkt.pkt_id
        else:
            self._data += 1
        if total > self.peak_occupancy:
            self.peak_occupancy = total
        return True

    def insert(self, pkt: DataPacket, tick: int) -> bool:
        """Replace the packet's phantom with the data packet, in place.

        Returns False when no phantom is present (it was dropped on a
        full FIFO), in which case the data packet must be dropped too.
        """
        slot = self.directory.pop(pkt.pkt_id, None)
        if slot is None or slot.consumed:
            self.drops_no_phantom += 1
            return False
        slot.payload = pkt
        slot.is_phantom = False
        self._data += 1
        return True

    def pop(self) -> Optional[DataPacket]:
        """Remove and return the oldest head if it is a data packet.

        A phantom at the oldest head blocks the whole logical FIFO (no
        action taken), enforcing arrival-order state access.
        """
        # Consumed (expired-phantom) heads are purged during the same
        # scan that finds the oldest head — one pass over the buffers.
        best: Optional[Deque[Slot]] = None
        best_slot: Optional[Slot] = None
        for buffer in self.buffers:
            while buffer:
                head = buffer[0]
                if head.consumed:
                    buffer.popleft()
                    self._total -= 1
                    continue
                if best_slot is None or head.timestamp < best_slot.timestamp:
                    best_slot = head
                    best = buffer
                break
        if best_slot is None or best_slot.is_phantom:
            return None  # empty, or a placeholder awaits its data packet
        best.popleft()
        self._total -= 1
        self._data -= 1
        return best_slot.payload  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def _drop_consumed_heads(self) -> None:
        for buffer in self.buffers:
            while buffer and buffer[0].consumed:
                buffer.popleft()
                self._total -= 1

    def head_data_age(self, tick: int) -> Optional[int]:
        """Age (in ticks) of the oldest head if it is a data packet."""
        self._drop_consumed_heads()
        best_slot: Optional[Slot] = None
        for buffer in self.buffers:
            if buffer and (
                best_slot is None or buffer[0].timestamp < best_slot.timestamp
            ):
                best_slot = buffer[0]
        if best_slot is None or best_slot.is_phantom:
            return None
        return tick - best_slot.timestamp[0]

    def expire_phantom(self, pkt_id: int) -> bool:
        """Retire a phantom whose data packet will never come (used when a
        data packet is dropped upstream). Marks the slot consumed so it
        no longer blocks the queue."""
        slot = self.directory.pop(pkt_id, None)
        if slot is None:
            return False
        slot.consumed = True
        return True


class IdealOrderBuffer:
    """Queue model of the ideal MP5 baseline: one virtual FIFO per
    register index, so a blocked index never blocks others.

    Exposes the same push/insert/pop surface as :class:`StageFifoGroup`
    (capacity is unbounded — the ideal design has no practical limits).
    """

    def __init__(self, num_pipelines: int, capacity: Optional[int] = None):
        self.num_pipelines = num_pipelines
        self.capacity = capacity  # accepted for interface parity; unused
        self.queues: Dict[Tuple[str, Optional[int]], Deque[Slot]] = {}
        self.directory: Dict[int, Tuple[Slot, Tuple[str, Optional[int]]]] = {}
        self.drops_full = 0
        self.drops_no_phantom = 0
        self.peak_occupancy = 0
        # Incrementally maintained (see StageFifoGroup): O(1) telemetry.
        self._total = 0
        self._data = 0
        # Group-level high-water mark (see StageFifoGroup). Per-index
        # queues would only need a per-key mark; the group-level check is
        # conservative (may over-drop late phantoms) but deterministic.
        self._max_phantom_pkt_id = -1

    def _stamp(self, tick: int) -> Timestamp:
        return (tick, next(_seq_counter))

    def _note_occupancy(self) -> None:
        if self._total > self.peak_occupancy:
            self.peak_occupancy = self._total

    def occupancy(self) -> int:
        return self._total

    def data_occupancy(self) -> int:
        return self._data

    def stale_phantom(self, pkt_id: int) -> bool:
        """See :meth:`StageFifoGroup.stale_phantom`."""
        return pkt_id < self._max_phantom_pkt_id

    def push(
        self, pkt: Union[DataPacket, PhantomPacket], fifo_id: int, tick: int
    ) -> bool:
        if not isinstance(pkt, PhantomPacket):
            raise ConfigError("IdealOrderBuffer queues via phantoms only")
        key = (pkt.array, pkt.index)
        slot = Slot((tick, next(_seq_counter)), pkt)
        self.queues.setdefault(key, deque()).append(slot)
        self.directory[pkt.pkt_id] = (slot, key)
        if pkt.pkt_id > self._max_phantom_pkt_id:
            self._max_phantom_pkt_id = pkt.pkt_id
        self._total += 1
        self._note_occupancy()
        return True

    def insert(self, pkt: DataPacket, tick: int) -> bool:
        entry = self.directory.pop(pkt.pkt_id, None)
        if entry is None or entry[0].consumed:
            self.drops_no_phantom += 1
            return False
        entry[0].payload = pkt
        entry[0].is_phantom = False
        self._data += 1
        return True

    def pop(self) -> Optional[DataPacket]:
        best_key = None
        best_slot: Optional[Slot] = None
        for key, queue in self.queues.items():
            while queue and queue[0].consumed:
                queue.popleft()
                self._total -= 1
            if not queue:
                continue
            head = queue[0]
            if head.is_phantom:
                continue  # this index waits; others may proceed
            if best_slot is None or head.timestamp < best_slot.timestamp:
                best_slot = head
                best_key = key
        if best_slot is None:
            return None
        self.queues[best_key].popleft()
        self._total -= 1
        self._data -= 1
        return best_slot.payload  # type: ignore[return-value]

    def head_data_age(self, tick: int) -> Optional[int]:
        ages = []
        for queue in self.queues.values():
            if queue and not queue[0].is_phantom and not queue[0].consumed:
                ages.append(tick - queue[0].timestamp[0])
        return max(ages) if ages else None

    def expire_phantom(self, pkt_id: int) -> bool:
        entry = self.directory.pop(pkt_id, None)
        if entry is None:
            return False
        entry[0].consumed = True
        return True
