"""Analytical cross-validation: throughput bounds and queueing models.

Implements the §3.5.2 fundamental limits (per-array and whole-program
throughput upper bounds from state-access skew) and an M/D/1 latency
model, both cross-checked against simulator measurements by the tier-1
tests — if the engines and the math disagree, one of them is wrong.
"""

from .queueing import (
    ArrayBound,
    array_throughput_bound,
    fundamental_limit,
    md1_mean_in_system,
    md1_mean_queue,
    md1_mean_wait,
    program_throughput_bound,
    scalar_state_limit,
)

__all__ = [
    "ArrayBound",
    "array_throughput_bound",
    "fundamental_limit",
    "md1_mean_in_system",
    "md1_mean_queue",
    "md1_mean_wait",
    "program_throughput_bound",
    "scalar_state_limit",
]
