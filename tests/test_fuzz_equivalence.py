"""Program fuzzing: random Domino programs stay functionally equivalent.

Generates small random — but valid — Domino programs (random register
arrays, guarded read-modify-writes with hashed stateless indexes, header
rewrites), compiles each through the full toolchain, and checks §2.2.1
equivalence on random line-rate traffic. This is the broadest statement
of the paper's correctness claim: equivalence holds for *all* programs,
not just the curated catalog.
"""

import numpy as np
import pytest

from repro.compiler import compile_program
from repro.equivalence import check_equivalence
from repro.mp5 import MP5Config
from repro.workloads import line_rate_trace

FIELDS = ["f0", "f1", "f2", "f3"]
# Index expressions may only use fields the program never writes —
# otherwise a later access would legitimately compute a different index,
# which the single-index-per-array rule (correctly) rejects.
KEY_FIELDS = ["f0", "f1"]
MUT_FIELDS = ["f2", "f3"]

# Statement patterns; {r} = register, {idx} = that register's index
# expression, {a}/{b} = packet fields, {c} = small constant.
UPDATE_PATTERNS = [
    "{r}[{idx}] = {r}[{idx}] + p.{a};",
    "{r}[{idx}] = {r}[{idx}] + {c};",
    "{r}[{idx}] = p.{a} + {c};",
    "{r}[{idx}] = ({r}[{idx}] > {c}) ? p.{a} : {r}[{idx}] + 1;",
    "if (p.{a} % 2 == 0) {{ {r}[{idx}] = {r}[{idx}] + {c}; }}",
    "if (p.{a} > p.{b}) {{ {r}[{idx}] = p.{b}; }} else {{ {r}[{idx}] = {r}[{idx}] + 1; }}",
    "p.{b} = {r}[{idx}];",
    "p.{b} = {r}[{idx}] + p.{a};",
]

STATELESS_PATTERNS = [
    "p.{b} = p.{a} + {c};",
    "p.{b} = (p.{a} > {c}) ? 1 : 0;",
    "p.{b} = p.{a} ^ p.{b};",
]


def random_program(rng: np.random.Generator) -> str:
    num_regs = int(rng.integers(1, 4))
    sizes = [int(rng.integers(1, 65)) for _ in range(num_regs)]
    regs = [f"r{i}" for i in range(num_regs)]
    decls = [
        f"int {name}[{size}] = {{{int(rng.integers(0, 5))}}};"
        for name, size in zip(regs, sizes)
    ]
    # One fixed index expression per array (the Banzai single-index rule).
    index_exprs = {}
    for name, size in zip(regs, sizes):
        field = KEY_FIELDS[int(rng.integers(0, len(KEY_FIELDS)))]
        salt = int(rng.integers(0, 100))
        index_exprs[name] = f"hash2(p.{field}, {salt}) % {size}"

    statements = []
    for _ in range(int(rng.integers(2, 7))):
        if rng.random() < 0.75:
            pattern = UPDATE_PATTERNS[int(rng.integers(0, len(UPDATE_PATTERNS)))]
            reg = regs[int(rng.integers(0, num_regs))]
            statements.append(
                pattern.format(
                    r=reg,
                    idx=index_exprs[reg],
                    a=FIELDS[int(rng.integers(0, len(FIELDS)))],
                    b=MUT_FIELDS[int(rng.integers(0, len(MUT_FIELDS)))],
                    c=int(rng.integers(1, 10)),
                )
            )
        else:
            pattern = STATELESS_PATTERNS[
                int(rng.integers(0, len(STATELESS_PATTERNS)))
            ]
            statements.append(
                pattern.format(
                    a=FIELDS[int(rng.integers(0, len(FIELDS)))],
                    b=MUT_FIELDS[int(rng.integers(0, len(MUT_FIELDS)))],
                    c=int(rng.integers(1, 10)),
                )
            )

    fields_decl = "\n".join(f"    int {f};" for f in FIELDS)
    body = "\n".join(f"    {s}" for s in statements)
    return (
        "struct Packet {\n"
        + fields_decl
        + "\n};\n\n"
        + "\n".join(decls)
        + "\n\nvoid func(struct Packet p) {\n"
        + body
        + "\n}\n"
    )


@pytest.mark.parametrize("seed", range(30))
def test_random_program_equivalence(seed):
    rng = np.random.default_rng(seed)
    source = random_program(rng)
    try:
        program = compile_program(source, name=f"fuzz{seed}")
    except Exception as exc:  # pragma: no cover - generator bug guard
        pytest.fail(f"generated program failed to compile: {exc}\n{source}")

    k = int(rng.integers(1, 5))
    trace = line_rate_trace(
        250,
        k,
        lambda r, i: {f: int(r.integers(0, 32)) for f in FIELDS},
        seed=seed,
    )
    report = check_equivalence(program, trace, MP5Config(num_pipelines=k))
    assert report.equivalent, (
        f"seed {seed} (k={k}) diverged:\n{report.summary()}\n--- source ---\n"
        f"{source}"
    )
    assert report.c1_violating_packets == 0


@pytest.mark.parametrize("seed", range(30, 40))
def test_random_program_equivalence_under_ideal_config(seed):
    rng = np.random.default_rng(seed)
    source = random_program(rng)
    program = compile_program(source, name=f"fuzz{seed}")
    trace = line_rate_trace(
        200,
        4,
        lambda r, i: {f: int(r.integers(0, 32)) for f in FIELDS},
        seed=seed,
    )
    report = check_equivalence(program, trace, MP5Config.ideal(num_pipelines=4))
    assert report.equivalent, f"seed {seed}:\n{report.summary()}\n{source}"
