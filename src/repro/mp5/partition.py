"""Logical MP5 partitioning (§3.1, footnote 1).

MP5's compiler can program a *subset* m of the k physical pipelines with
one program and the remaining pipelines with others, "creating multiple
independent logical MP5, each with varying number of parallel
pipelines". Because pipelines in different partitions share no state,
no crossbar paths and no FIFOs, each logical switch behaves exactly like
a standalone MP5 of its own width — which is how we model it: one
:class:`~repro.mp5.switch.MP5Switch` per partition over disjoint
pipeline ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..compiler.codegen import CompiledProgram
from ..errors import ConfigError
from .config import MP5Config
from .stats import SwitchStats
from .switch import MP5Switch


@dataclass
class LogicalPartition:
    """One logical MP5: a program and the pipelines dedicated to it."""

    program: CompiledProgram
    num_pipelines: int
    name: str = ""

    def __post_init__(self):
        if self.num_pipelines < 1:
            raise ConfigError("a partition needs at least one pipeline")
        if not self.name:
            self.name = self.program.name


@dataclass
class PartitionResult:
    """Per-partition outcome of a partitioned run."""

    name: str
    pipelines: Tuple[int, int]  # [first, last] physical pipeline ids
    stats: SwitchStats
    registers: Dict[str, List[int]]


class PartitionedMP5:
    """A physical switch whose pipelines are split among logical MP5s.

    Example: on an 8-pipeline switch, run flowlet switching on 6
    pipelines and a heavy-hitter sketch on the remaining 2::

        switch = PartitionedMP5(
            total_pipelines=8,
            partitions=[
                LogicalPartition(flowlet_program, 6),
                LogicalPartition(sketch_program, 2),
            ],
        )
        results = switch.run([flowlet_trace, sketch_trace])
    """

    def __init__(
        self,
        total_pipelines: int,
        partitions: Sequence[LogicalPartition],
        base_config: Optional[MP5Config] = None,
    ):
        if not partitions:
            raise ConfigError("need at least one partition")
        used = sum(p.num_pipelines for p in partitions)
        if used > total_pipelines:
            raise ConfigError(
                f"partitions need {used} pipelines but the switch has "
                f"{total_pipelines}"
            )
        self.total_pipelines = total_pipelines
        self.partitions = list(partitions)
        base_config = base_config or MP5Config()
        self.switches: List[MP5Switch] = []
        self.ranges: List[Tuple[int, int]] = []
        first = 0
        for part in self.partitions:
            config = replace(base_config, num_pipelines=part.num_pipelines)
            self.switches.append(MP5Switch(part.program, config))
            self.ranges.append((first, first + part.num_pipelines - 1))
            first += part.num_pipelines

    @property
    def spare_pipelines(self) -> int:
        return self.total_pipelines - sum(p.num_pipelines for p in self.partitions)

    def run(
        self,
        traces: Sequence[Iterable],
        max_ticks: Optional[int] = None,
        record_access_order: bool = False,
    ) -> List[PartitionResult]:
        """Run one trace per partition; partitions are independent."""
        if len(traces) != len(self.partitions):
            raise ConfigError(
                f"got {len(traces)} traces for {len(self.partitions)} partitions"
            )
        results = []
        for part, switch, pipes, trace in zip(
            self.partitions, self.switches, self.ranges, traces
        ):
            stats = switch.run(
                trace, max_ticks=max_ticks, record_access_order=record_access_order
            )
            results.append(
                PartitionResult(
                    name=part.name,
                    pipelines=pipes,
                    stats=stats,
                    registers=dict(switch.registers),
                )
            )
        return results
