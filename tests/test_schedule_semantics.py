"""Scheduling preserves semantics: executing a program stage-by-stage
(in PVSM order) must equal executing the raw TAC straight-line — for
bundled and fuzzed programs alike. This pins the pipelining phase: any
instruction placed in too early a stage would read an undefined temp,
and any reordering across a dependence would change results.
"""

import numpy as np
import pytest

from repro.compiler import compile_program, preprocess
from repro.compiler.tac import TacEvaluator
from repro.domino import get_program, program_names

from .test_fuzz_equivalence import FIELDS, random_program
from .test_integration import HEADER_GENERATORS


def run_tac_flat(tac, headers):
    regs = {n: list(init) for n, (_s, init) in tac.registers.items()}
    hdrs = dict(headers)
    TacEvaluator(hdrs, regs).run(tac.instrs)
    return hdrs, regs


def run_stages(compiled, headers):
    regs = compiled.make_register_store()
    hdrs = dict(headers)
    compiled.execute_packet(hdrs, regs)
    return hdrs, regs


@pytest.mark.parametrize("name", sorted(program_names()))
def test_staged_execution_matches_flat_tac(name):
    compiled = compile_program(name)
    tac = preprocess(get_program(name))
    rng = np.random.default_rng(99)
    gen = HEADER_GENERATORS[name]
    for i in range(10):
        headers = gen(rng, i)
        flat_h, flat_r = run_tac_flat(tac, headers)
        staged_h, staged_r = run_stages(compiled, headers)
        assert flat_h == staged_h, name
        assert flat_r == staged_r, name


@pytest.mark.parametrize("seed", range(12))
def test_staged_execution_matches_flat_tac_fuzzed(seed):
    rng = np.random.default_rng(seed + 1000)
    source = random_program(rng)
    compiled = compile_program(source, name=f"sched-fuzz{seed}")
    tac = compiled.tac
    for i in range(8):
        headers = {f: int(rng.integers(0, 64)) for f in FIELDS}
        flat_h, flat_r = run_tac_flat(tac, headers)
        staged_h, staged_r = run_stages(compiled, headers)
        assert flat_h == staged_h
        assert flat_r == staged_r


@pytest.mark.parametrize("name", ["figure3", "conga", "token_bucket", "netcache"])
def test_multi_packet_sequences_match(name):
    """State threads correctly across packets under staged execution."""
    compiled = compile_program(name)
    tac = preprocess(get_program(name))
    rng = np.random.default_rng(7)
    gen = HEADER_GENERATORS[name]

    flat_regs = {n: list(init) for n, (_s, init) in tac.registers.items()}
    staged_regs = compiled.make_register_store()
    for i in range(50):
        headers = gen(rng, i)
        flat_h = dict(headers)
        TacEvaluator(flat_h, flat_regs).run(tac.instrs)
        staged_h = dict(headers)
        compiled.execute_packet(staged_h, staged_regs)
        assert flat_h == staged_h, (name, i)
    assert flat_regs == staged_regs, name
