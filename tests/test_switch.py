"""Tests for the MP5 switch engine (§3.2-§3.4)."""

import numpy as np
import pytest

from repro.banzai import run_reference
from repro.compiler import compile_program
from repro.errors import ConfigError
from repro.mp5 import (
    FLOW_ORDER_ARRAY,
    MP5Config,
    MP5Switch,
    c1_metrics,
    run_mp5,
)
from repro.workloads import (
    clone_packets,
    line_rate_trace,
    reference_trace,
    make_sensitivity_program,
    sensitivity_trace,
)

from .conftest import figure3_headers, heavy_hitter_headers


def equivalence_ok(program, trace, config):
    reference = run_reference(program, reference_trace(trace, config.num_pipelines))
    switch = MP5Switch(program, config)
    switch.run(clone_packets(trace), record_access_order=True)
    ref_regs = reference.registers.snapshot()
    for name, want in ref_regs.items():
        if tuple(switch.registers[name]) != want:
            return False, switch
    report = c1_metrics(
        reference.access_order, switch.stats.access_order, switch.stats.offered
    )
    return report.displaced_packets == 0, switch


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_heavy_hitter_equivalent_at_any_width(self, heavy_hitter_program, k):
        trace = line_rate_trace(600, k, heavy_hitter_headers, seed=k)
        ok, _ = equivalence_ok(heavy_hitter_program, trace, MP5Config(num_pipelines=k))
        assert ok

    def test_figure3_equivalent(self, figure3_program, figure3_trace):
        ok, _ = equivalence_ok(figure3_program, figure3_trace, MP5Config(num_pipelines=2))
        assert ok

    def test_sequencer_stamps_arrival_order(self, sequencer_program):
        trace = line_rate_trace(200, 4, lambda r, i: {"seq": 0}, seed=1)
        packets = clone_packets(trace)
        switch = MP5Switch(sequencer_program, MP5Config(num_pipelines=4))
        switch.run(packets)
        for pkt in packets:
            assert pkt.egress_tick is not None
            assert pkt.headers["seq"] == pkt.pkt_id + 1

    @pytest.mark.parametrize(
        "name",
        ["flowlet", "wfq", "conga", "bloom_filter", "stateful_index",
         "stateful_predicate", "rcp"],
    )
    def test_program_suite_equivalent(self, name):
        program = compile_program(name)
        rng_fields = {
            "flowlet": lambda r, i: {
                "sport": int(r.integers(0, 40)), "dport": int(r.integers(0, 40)),
                "arrival": i, "new_hop": 0, "next_hop": 0, "id": 0,
            },
            "wfq": lambda r, i: {
                "sport": int(r.integers(0, 40)), "dport": int(r.integers(0, 40)),
                "length": int(r.integers(64, 1500)), "start": 0, "id": 0,
            },
            "conga": lambda r, i: {
                "util": int(r.integers(0, 100)), "path_id": int(r.integers(0, 8)),
            },
            "bloom_filter": lambda r, i: {
                "key": int(r.integers(0, 100)), "member": 0,
            },
            "stateful_index": lambda r, i: {"v": i},
            "stateful_predicate": lambda r, i: {
                "key": int(r.integers(0, 100)), "out": 0,
            },
            "rcp": lambda r, i: {
                "rtt": int(r.integers(0, 60)), "size_bytes": int(r.integers(64, 1500)),
            },
        }[name]
        trace = line_rate_trace(400, 4, rng_fields, seed=11)
        ok, _ = equivalence_ok(program, trace, MP5Config(num_pipelines=4))
        assert ok, name

    def test_equivalent_with_ideal_config(self, heavy_hitter_program):
        trace = line_rate_trace(500, 4, heavy_hitter_headers, seed=2)
        ok, _ = equivalence_ok(
            heavy_hitter_program, trace, MP5Config.ideal(num_pipelines=4)
        )
        assert ok

    def test_equivalent_with_random_initial_shard(self, heavy_hitter_program):
        trace = line_rate_trace(500, 4, heavy_hitter_headers, seed=3)
        ok, _ = equivalence_ok(
            heavy_hitter_program,
            trace,
            MP5Config(num_pipelines=4, initial_shard="random"),
        )
        assert ok

    def test_equivalent_with_optimal_remap(self, heavy_hitter_program):
        trace = line_rate_trace(500, 4, heavy_hitter_headers, seed=4)
        ok, _ = equivalence_ok(
            heavy_hitter_program,
            trace,
            MP5Config(num_pipelines=4, remap_algorithm="optimal"),
        )
        assert ok


class TestThroughputInvariants:
    def test_stateless_program_line_rate(self):
        program = compile_program("stateless_rewrite")
        trace = line_rate_trace(
            1000, 4, lambda r, i: {"ttl": 64, "dscp": 0, "out": 0}, seed=0
        )
        stats, _ = run_mp5(program, trace, MP5Config(num_pipelines=4))
        assert stats.throughput_normalized() >= 0.99
        assert stats.max_queue_depth == 0

    def test_global_counter_limited_to_one_pipeline(self, sequencer_program):
        trace = line_rate_trace(1200, 4, lambda r, i: {"seq": 0}, seed=0)
        stats, _ = run_mp5(sequencer_program, trace, MP5Config(num_pipelines=4))
        assert stats.throughput_normalized() == pytest.approx(0.25, abs=0.03)

    def test_sharded_table_near_line_rate(self, heavy_hitter_program):
        trace = line_rate_trace(2000, 4, heavy_hitter_headers, seed=1)
        stats, _ = run_mp5(heavy_hitter_program, trace, MP5Config(num_pipelines=4))
        assert stats.throughput_normalized() > 0.9

    def test_larger_packets_reach_line_rate(self, sequencer_program):
        # At 512 B the arrival rate is 1/8 of 64 B line rate: even a
        # global counter keeps up (Figure 7d / §4.4 insight).
        trace = line_rate_trace(
            600, 4, lambda r, i: {"seq": 0}, packet_size=512, seed=0
        )
        stats, _ = run_mp5(sequencer_program, trace, MP5Config(num_pipelines=4))
        assert stats.throughput_normalized() >= 0.99

    def test_all_packets_egress_without_caps(self, heavy_hitter_program):
        trace = line_rate_trace(500, 2, heavy_hitter_headers, seed=5)
        stats, _ = run_mp5(heavy_hitter_program, trace, MP5Config(num_pipelines=2))
        assert stats.egressed == stats.offered
        assert stats.dropped == 0

    def test_max_ticks_truncates(self, sequencer_program):
        trace = line_rate_trace(500, 4, lambda r, i: {"seq": 0}, seed=0)
        stats, _ = run_mp5(
            sequencer_program, trace, MP5Config(num_pipelines=4), max_ticks=50
        )
        assert stats.ticks == 50
        assert stats.egressed < stats.offered


class TestPhantomMechanics:
    def test_phantoms_generated_per_access(self, heavy_hitter_program):
        trace = line_rate_trace(100, 2, heavy_hitter_headers, seed=0)
        stats, _ = run_mp5(heavy_hitter_program, trace, MP5Config(num_pipelines=2))
        assert stats.phantoms_generated == 100  # one array access per packet

    def test_no_phantoms_when_disabled(self, heavy_hitter_program):
        trace = line_rate_trace(100, 2, heavy_hitter_headers, seed=0)
        cfg = MP5Config(num_pipelines=2, enable_phantoms=False)
        stats, _ = run_mp5(heavy_hitter_program, trace, cfg)
        assert stats.phantoms_generated == 0
        assert stats.egressed == 100

    def test_resolvable_false_guard_skips_phantom(self, figure3_program):
        # mux==1 packets access reg1 but never reg2, so phantom count is
        # 2 per packet (reg1 + reg3), not 3.
        trace = line_rate_trace(
            50, 2,
            lambda r, i: {"h1": 0, "h2": 0, "h3": 0, "mux": 1, "val": 0},
            seed=0,
        )
        stats, _ = run_mp5(figure3_program, trace, MP5Config(num_pipelines=2))
        assert stats.phantoms_generated == 100

    def test_conservative_phantom_wastes_slot(self):
        program = compile_program("stateful_predicate")
        trace = line_rate_trace(
            60, 2, lambda r, i: {"key": int(r.integers(0, 50)), "out": 0}, seed=0
        )
        stats, _ = run_mp5(program, trace, MP5Config(num_pipelines=2))
        # mode==0 always: table_b phantoms are all wasted.
        assert stats.wasted_slots == 60

    def test_capped_fifo_drops_and_expires(self, sequencer_program):
        # A tiny FIFO at sustained overload must drop but never deadlock.
        trace = line_rate_trace(400, 4, lambda r, i: {"seq": 0}, seed=0)
        cfg = MP5Config(num_pipelines=4, fifo_capacity=4)
        stats, _ = run_mp5(sequencer_program, trace, cfg)
        assert stats.dropped > 0
        assert stats.egressed + stats.dropped == stats.offered

    def test_dropped_packets_preserve_order_of_rest(self, sequencer_program):
        trace = line_rate_trace(300, 4, lambda r, i: {"seq": 0}, seed=0)
        packets = clone_packets(trace)
        switch = MP5Switch(
            sequencer_program, MP5Config(num_pipelines=4, fifo_capacity=4)
        )
        switch.run(packets)
        delivered = [p for p in packets if p.egress_tick is not None]
        seqs = [p.headers["seq"] for p in sorted(delivered, key=lambda p: p.pkt_id)]
        assert seqs == sorted(seqs)  # survivors still sequenced in order

    def test_phantom_latency_validated(self, heavy_hitter_program):
        with pytest.raises(ConfigError, match="slack"):
            MP5Switch(
                heavy_hitter_program,
                MP5Config(num_pipelines=2, phantom_latency=10),
            )


class TestSteeringAndSharding:
    def test_steering_counted(self, heavy_hitter_program):
        trace = line_rate_trace(500, 4, heavy_hitter_headers, seed=0)
        stats, _ = run_mp5(heavy_hitter_program, trace, MP5Config(num_pipelines=4))
        assert stats.steering_moves > 0

    def test_no_steering_with_one_pipeline(self, heavy_hitter_program):
        trace = line_rate_trace(200, 1, heavy_hitter_headers, seed=0)
        stats, _ = run_mp5(heavy_hitter_program, trace, MP5Config(num_pipelines=1))
        assert stats.steering_moves == 0

    def test_remap_runs_periodically(self, heavy_hitter_program):
        trace = line_rate_trace(2000, 4, heavy_hitter_headers, seed=0)
        cfg = MP5Config(num_pipelines=4, remap_period=50)
        switch = MP5Switch(heavy_hitter_program, cfg)
        switch.run(trace)
        # With skew-free traffic remaps may be rare but epochs must have
        # run: counters were reset (sum is small, not cumulative).
        assert switch.sharder.arrays["counts"].access_counts.sum() < 2000

    def test_pinned_array_single_pipeline(self):
        program = compile_program("stateful_index")
        trace = line_rate_trace(200, 4, lambda r, i: {"v": i}, seed=0)
        switch = MP5Switch(program, MP5Config(num_pipelines=4))
        switch.run(trace)
        mapping = switch.sharder.arrays["ring"].index_to_pipeline
        assert len(set(mapping.tolist())) == 1

    def test_fused_arrays_one_access_per_stage(self):
        program = compile_program("conga")
        trace = line_rate_trace(
            100, 2,
            lambda r, i: {"util": int(r.integers(0, 90)),
                          "path_id": int(r.integers(0, 4))},
            seed=0,
        )
        stats, _ = run_mp5(program, trace, MP5Config(num_pipelines=2))
        assert stats.phantoms_generated == 100  # one merged stage access


class TestFlowOrdering:
    def _mixed_program(self):
        # Stateful firewall: SYN packets touch state, others read it; the
        # stateless-priority rule can reorder within a flow (§3.4).
        return compile_program("stateful_firewall")

    def _mixed_trace(self, n=600, k=4, seed=0):
        def headers(rng, i):
            flow = int(rng.integers(0, 8))
            return {
                "src_ip": flow,
                "dst_ip": flow,
                "syn": int(rng.random() < 0.3),
                "allowed": 0,
            }

        trace = line_rate_trace(n, k, headers, seed=seed)
        for pkt in trace:
            pkt.flow_id = pkt.headers["src_ip"]
        return trace

    def test_flow_order_stage_restores_order(self):
        program = self._mixed_program()
        trace = self._mixed_trace()
        cfg = MP5Config(
            num_pipelines=4, flow_order_field="src_ip", flow_order_size=64
        )
        packets = clone_packets(trace)
        switch = MP5Switch(program, cfg)
        stats = switch.run(packets)
        assert stats.reordered_packets() == 0
        assert stats.egressed == stats.offered

    def test_flow_order_array_registered(self):
        program = self._mixed_program()
        cfg = MP5Config(num_pipelines=2, flow_order_field="src_ip")
        switch = MP5Switch(program, cfg)
        assert FLOW_ORDER_ARRAY in switch.sharder.arrays

    def test_flow_order_needs_free_stage(self, heavy_hitter_program):
        with pytest.raises(ConfigError, match="final stage"):
            MP5Switch(
                heavy_hitter_program,
                MP5Config(
                    num_pipelines=2,
                    pipeline_depth=heavy_hitter_program.stage_count,
                    flow_order_field="src_ip",
                ),
            )

    def test_flow_order_excluded_from_returned_registers(self):
        program = self._mixed_program()
        trace = self._mixed_trace(n=100)
        cfg = MP5Config(num_pipelines=2, flow_order_field="src_ip")
        _stats, registers = run_mp5(program, trace, cfg)
        assert FLOW_ORDER_ARRAY not in registers


class TestStarvation:
    def test_starving_stateful_packet_preempts_stateless(self):
        # Mixed traffic at line rate with a stateful hotspot: without the
        # guard, stateful packets can wait arbitrarily behind stateless
        # through-traffic.
        program = compile_program("stateful_firewall")

        def headers(rng, i):
            return {
                "src_ip": 1,
                "dst_ip": 1,
                "syn": 1,  # every packet stateful on the same index
                "allowed": 0,
            }

        trace = line_rate_trace(400, 4, headers, seed=0)
        cfg = MP5Config(num_pipelines=4, starvation_threshold=20)
        stats, _ = run_mp5(program, trace, cfg)
        # The run completes; preemption drops are possible but bounded.
        assert stats.egressed + stats.dropped == stats.offered


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_pipelines": 0},
            {"num_ports": 0},
            {"pipeline_depth": 1},
            {"remap_period": 0},
            {"remap_algorithm": "magic"},
            {"initial_shard": "magic"},
            {"phantom_latency": -1},
            {"fifo_capacity": 0},
            {"flow_order_size": 0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            MP5Config(**kwargs)

    def test_ideal_factory(self):
        cfg = MP5Config.ideal(num_pipelines=8)
        assert cfg.ideal_queues
        assert cfg.remap_algorithm == "optimal"
        assert cfg.num_pipelines == 8
