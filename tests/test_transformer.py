"""Tests for the PVSM-to-PVSM transformer (preemptive address resolution)."""

import pytest

from repro.compiler import preprocess, transform
from repro.compiler.tac import OpKind
from repro.domino import analyze, get_program, parse


def transformed_of(body, regs="", fields="int a; int b; int c;"):
    program = parse(
        f"struct Packet {{ {fields} }};\n{regs}\n"
        f"void func(struct Packet p) {{ {body} }}"
    )
    analyze(program)
    return transform(preprocess(program))


class TestResolutionStage:
    def test_stage_zero_is_stateless(self):
        tr = transformed_of("r[p.a % 8] = r[p.a % 8] + 1;", regs="int r[8];")
        for instr in tr.resolution_stage.instrs:
            assert not instr.is_stateful

    def test_index_computation_moved_to_stage_zero(self):
        tr = transformed_of("r[p.a % 8] = 1;", regs="int r[8];")
        ops_in_stage0 = {
            (i.kind, i.op) for i in tr.resolution_stage.instrs
        }
        assert (OpKind.BINARY, "%") in ops_in_stage0

    def test_hash_index_moved_to_stage_zero(self):
        tr = transformed_of(
            "r[hash2(p.a, p.b) % 8] = 1;", regs="int r[8];"
        )
        assert any(
            i.kind is OpKind.CALL for i in tr.resolution_stage.instrs
        )

    def test_clusters_never_in_stage_zero(self):
        tr = transformed_of("r[0] = r[0] + 1;", regs="int r[1];")
        assert tr.arrays["r"].stage >= 1
        assert tr.resolution_stage.arrays == []

    def test_stateless_program_has_no_arrays(self):
        tr = transformed_of("p.a = p.b + 1;")
        assert tr.arrays == {}


class TestClassification:
    def test_stateless_index_shardable(self):
        tr = transformed_of("r[p.a % 8] = 1;", regs="int r[8];")
        plan = tr.arrays["r"]
        assert plan.shardable
        assert plan.index_operand is not None

    def test_stateful_index_pinned(self):
        tr = transformed_of(
            "r1[r2[0] % 8] = 1;", regs="int r1[8]; int r2[1];"
        )
        plan = tr.arrays["r1"]
        assert not plan.shardable
        assert plan.index_operand is None

    def test_stateless_guard_resolvable(self):
        tr = transformed_of(
            "if (p.a > 0) { r[p.b % 8] = 1; }", regs="int r[8];"
        )
        plan = tr.arrays["r"]
        assert plan.guard_resolvable
        assert plan.guard_operand is not None
        assert not plan.conservative_phantom

    def test_stateful_guard_conservative(self):
        tr = transformed_of(
            "if (mode > 0) { r[p.b % 8] = 1; }",
            regs="int mode; int r[8];",
        )
        plan = tr.arrays["r"]
        assert not plan.guard_resolvable
        assert plan.conservative_phantom

    def test_unconditional_access_no_guard(self):
        tr = transformed_of("r[0] = r[0] + 1;", regs="int r[1];")
        plan = tr.arrays["r"]
        assert plan.guard_operand is None
        assert not plan.conservative_phantom

    def test_both_branch_arrays_conservative(self):
        tr = transform(preprocess(get_program("stateful_predicate")))
        assert tr.arrays["table_a"].conservative_phantom
        assert tr.arrays["table_b"].conservative_phantom

    def test_has_write_flag(self):
        tr = transformed_of(
            "p.a = r1[0]; r2[0] = 1;", regs="int r1[1]; int r2[1];"
        )
        assert not tr.arrays["r1"].has_write
        assert tr.arrays["r2"].has_write

    def test_pin_key_defaults_to_name(self):
        tr = transformed_of("r[0] = 1;", regs="int r[1];")
        assert tr.arrays["r"].pin_key == "r"


class TestSerialization:
    def test_arrays_serialized_one_per_stage(self):
        tr = transform(preprocess(get_program("bloom_filter")))
        stages = [plan.stage for plan in tr.arrays.values()]
        assert len(stages) == len(set(stages))

    def test_unserialized_allows_sharing(self):
        tr = transform(
            preprocess(get_program("bloom_filter")), serialize_arrays=False
        )
        stages = [plan.stage for plan in tr.arrays.values()]
        assert len(set(stages)) < len(stages)

    def test_arrays_in_stage_order(self):
        tr = transform(preprocess(get_program("bloom_filter")))
        ordered = tr.arrays_in_stage_order()
        assert [p.stage for p in ordered] == sorted(p.stage for p in ordered)


class TestRealPrograms:
    @pytest.mark.parametrize(
        "name,expected_shardable",
        [
            ("flowlet", {"last_time": True, "saved_hop": True}),
            ("wfq", {"last_finish": True, "virtual_time": True}),
            ("heavy_hitter", {"counts": True}),
            ("stateful_index", {"cursor": True, "ring": False}),
        ],
    )
    def test_sharding_classification(self, name, expected_shardable):
        tr = transform(preprocess(get_program(name)))
        for reg, expected in expected_shardable.items():
            assert tr.arrays[reg].shardable == expected, reg

    def test_figure3_resolvable_guards(self):
        tr = transform(preprocess(get_program("figure3")))
        assert tr.arrays["reg1"].guard_resolvable
        assert tr.arrays["reg2"].guard_resolvable
        assert tr.arrays["reg3"].guard_operand is None
