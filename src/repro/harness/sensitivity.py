"""Figure 7 (§4.3.3): throughput sensitivity to switch parameters.

Four sweeps, each varying one parameter with the rest at their §4.3.1
defaults (64 ports, 16 stages, 4 pipelines, 4 stateful stages, register
size 512, 64 B packets, line-rate input, remap every 100 cycles):

* 7a — number of pipelines in {1, 2, 4, 8, 16}
* 7b — number of stateful stages in {0, 2, 4, 6, 8, 10}
* 7c — register size in {1, 4, 16, 64, 256, 1024, 4096}
* 7d — packet size in {64, 128, 256, 512, 1024, 1500} bytes

Every point runs MP5 and the ideal-MP5 baseline over several independent
packet streams and reports mean normalized throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..mp5 import ENGINES
from ..mp5.config import MP5Config
from ..workloads.synthetic import make_sensitivity_program, sensitivity_trace
from .parallel import parallel_map
from .report import ascii_chart, format_table

DEFAULTS = dict(
    num_pipelines=4,
    num_stateful=4,
    register_size=512,
    packet_size=64,
    num_stages=16,
    num_ports=64,
)

PIPELINE_SWEEP = (1, 2, 4, 8, 16)
STATEFUL_SWEEP = (0, 2, 4, 6, 8, 10)
REGISTER_SWEEP = (1, 4, 16, 64, 256, 1024, 4096)
PACKET_SIZE_SWEEP = (64, 128, 256, 512, 1024, 1500)


@dataclass
class SensitivityPoint:
    parameter: str
    value: int
    pattern: str
    mp5_throughput: float
    ideal_throughput: float
    seeds: int

    @property
    def gap_to_ideal(self) -> float:
        return self.ideal_throughput - self.mp5_throughput


@dataclass
class SweepSettings:
    """Scale knobs: the defaults finish a full figure in minutes; tests
    shrink them."""

    num_packets: int = 6000
    seeds: Sequence[int] = (0, 1, 2)
    pattern: str = "uniform"
    max_ticks_factor: int = 40  # safety cap: ticks <= factor * packets / k
    engine: str = "fast"  # dense | fast | vector (see repro.mp5.ENGINES)
    native: Optional[bool] = None  # vector engine: fused kernel tier
    epoch_jobs: Optional[int] = None  # vector engine: service workers


def _seed_point(task) -> tuple:
    """One (parameter value, seed) simulation pair: MP5 plus ideal-MP5.

    Module-level and driven by a plain tuple so it can cross a process
    boundary; the seed travels in the task, making the result a pure
    function of the arguments regardless of which worker runs it.
    """
    settings, overrides, seed = task
    params = dict(DEFAULTS)
    params.update(overrides)
    program = make_sensitivity_program(
        num_stateful=params["num_stateful"],
        register_size=params["register_size"],
        num_stages=params["num_stages"],
    )
    k = params["num_pipelines"]
    # Hold the measurement window constant in *ticks*, not packets: a
    # wider switch receives proportionally more packets per tick, and the
    # remap heuristic needs a fixed number of epochs to converge.
    num_packets = settings.num_packets * max(1, k // DEFAULTS["num_pipelines"])
    max_ticks = settings.max_ticks_factor * max(1, num_packets // max(k, 1))
    scores = []
    for config in (
        MP5Config(num_pipelines=k, pipeline_depth=params["num_stages"]),
        MP5Config.ideal(num_pipelines=k, pipeline_depth=params["num_stages"]),
    ):
        trace = sensitivity_trace(
            num_packets,
            k,
            params["num_stateful"],
            params["register_size"],
            pattern=settings.pattern,
            packet_size=params["packet_size"],
            seed=seed,
            num_ports=params["num_ports"],
        )
        stats, _ = ENGINES[settings.engine](
            program,
            trace,
            config,
            max_ticks=max_ticks,
            native=settings.native,
            epoch_jobs=settings.epoch_jobs,
        )
        scores.append(stats.throughput_normalized())
    return scores[0], scores[1]


def _run_point(
    parameter: str,
    value: int,
    settings: SweepSettings,
    overrides: Dict[str, int],
) -> SensitivityPoint:
    """Serial single-point entry, kept for direct callers."""
    seeds = list(settings.seeds)
    results = [_seed_point((settings, overrides, seed)) for seed in seeds]
    return _make_point(parameter, value, settings, results)


def _make_point(
    parameter: str,
    value: int,
    settings: SweepSettings,
    results: Sequence[tuple],
) -> SensitivityPoint:
    """Aggregate per-seed (mp5, ideal) scores exactly as the serial loop
    always has: ``np.mean`` over the seed-ordered lists."""
    return SensitivityPoint(
        parameter=parameter,
        value=value,
        pattern=settings.pattern,
        mp5_throughput=float(np.mean([r[0] for r in results])),
        ideal_throughput=float(np.mean([r[1] for r in results])),
        seeds=len(list(settings.seeds)),
    )


def _sweep(
    parameter: str,
    values: Sequence[int],
    settings: SweepSettings,
    override_key: str,
    jobs: Optional[int],
) -> List[SensitivityPoint]:
    """Run one Figure 7 panel as a flat values x seeds task list.

    Tasks are enumerated values-major / seeds-minor and results come
    back in task order, so re-grouping by value preserves the serial
    aggregation order bit-for-bit.
    """
    seeds = list(settings.seeds)
    tasks = [
        (settings, {override_key: value}, seed)
        for value in values
        for seed in seeds
    ]
    results = parallel_map(_seed_point, tasks, jobs=jobs)
    points = []
    for i, value in enumerate(values):
        chunk = results[i * len(seeds) : (i + 1) * len(seeds)]
        points.append(_make_point(parameter, value, settings, chunk))
    return points


def sweep_pipelines(
    settings: Optional[SweepSettings] = None,
    values: Sequence[int] = PIPELINE_SWEEP,
    jobs: Optional[int] = None,
) -> List[SensitivityPoint]:
    """Figure 7a: throughput vs number of pipelines."""
    settings = settings or SweepSettings()
    return _sweep("pipelines", values, settings, "num_pipelines", jobs)


def sweep_stateful_stages(
    settings: Optional[SweepSettings] = None,
    values: Sequence[int] = STATEFUL_SWEEP,
    jobs: Optional[int] = None,
) -> List[SensitivityPoint]:
    """Figure 7b: throughput vs number of stateful stages."""
    settings = settings or SweepSettings()
    return _sweep("stateful_stages", values, settings, "num_stateful", jobs)


def sweep_register_size(
    settings: Optional[SweepSettings] = None,
    values: Sequence[int] = REGISTER_SWEEP,
    jobs: Optional[int] = None,
) -> List[SensitivityPoint]:
    """Figure 7c: throughput vs register array size."""
    settings = settings or SweepSettings()
    return _sweep("register_size", values, settings, "register_size", jobs)


def sweep_packet_size(
    settings: Optional[SweepSettings] = None,
    values: Sequence[int] = PACKET_SIZE_SWEEP,
    jobs: Optional[int] = None,
) -> List[SensitivityPoint]:
    """Figure 7d: throughput vs packet size."""
    settings = settings or SweepSettings()
    return _sweep("packet_size", values, settings, "packet_size", jobs)


def render_sweep(points: List[SensitivityPoint], figure: str) -> str:
    """Render a sweep as a table plus an ASCII bar chart."""
    rows = [
        (p.value, p.mp5_throughput, p.ideal_throughput, p.gap_to_ideal)
        for p in points
    ]
    parameter = points[0].parameter if points else "value"
    table = format_table(
        [parameter, "MP5", "ideal", "gap"],
        rows,
        title=f"Figure {figure}: normalized throughput vs {parameter} "
        f"({points[0].pattern if points else ''} access)",
    )
    chart = ascii_chart(
        [p.value for p in points], [p.mp5_throughput for p in points]
    )
    return f"{table}\n\n{chart}"
