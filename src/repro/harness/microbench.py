"""§4.3.2 microbenchmarks: the contribution of design principles D2-D4.

Three experiments over independent input streams at the default switch
configuration (4 pipelines, 4 stateful stages, register size 512, 64 B
packets at line rate):

* **D2** — dynamic vs static (compile-time random) sharding: throughput
  ratio per seed, for both skewed and uniform access patterns.
* **D4** — fraction of packets violating C1 with D4 (always 0), without
  D4, and on the re-circulating baseline.
* **D3** — throughput of the re-circulating baseline vs MP5 and vs the
  naive single-pipeline-state design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..banzai.pipeline import BanzaiPipeline
from ..baselines import (
    RecircConfig,
    no_phantom_config,
    run_recirculation,
    run_single_pipeline_state,
    static_shard_config,
)
from ..mp5.config import MP5Config
from ..mp5.stats import c1_metrics
from ..mp5.switch import run_mp5
from ..workloads.synthetic import make_sensitivity_program, sensitivity_trace
from ..workloads.traffic import clone_packets, reference_trace
from .report import format_table

DEFAULT_K = 4
DEFAULT_STATEFUL = 4
DEFAULT_REGSIZE = 512


@dataclass
class MicrobenchSettings:
    num_packets: int = 6000
    seeds: Sequence[int] = tuple(range(10))
    num_pipelines: int = DEFAULT_K
    num_stateful: int = DEFAULT_STATEFUL
    register_size: int = DEFAULT_REGSIZE
    max_ticks: Optional[int] = None


@dataclass
class D2Result:
    pattern: str
    ratios: List[float]  # dynamic / static throughput per seed

    @property
    def min_ratio(self) -> float:
        return min(self.ratios)

    @property
    def max_ratio(self) -> float:
        return max(self.ratios)


@dataclass
class D4Result:
    """C1 violation fractions per seed, as (inversion, displaced) pairs.

    The headline numbers use the inversion-density reading (out-of-order
    access events / total accesses); the displaced-packet reading is kept
    alongside — see :class:`repro.mp5.stats.C1Report`.
    """

    with_d4: List[float]  # inversion fraction per seed (should be 0)
    without_d4: List[float]
    recirculation: List[float]
    with_d4_displaced: List[float] = None
    without_d4_displaced: List[float] = None
    recirculation_displaced: List[float] = None


@dataclass
class D3Result:
    mp5: List[float]
    recirculation: List[float]
    single_pipeline_state: List[float]
    avg_recirculations: List[float]

    @property
    def reduction_vs_mp5(self) -> List[float]:
        return [
            1.0 - (r / m if m else 0.0)
            for r, m in zip(self.recirculation, self.mp5)
        ]


def _trace(settings: MicrobenchSettings, pattern: str, seed: int):
    return sensitivity_trace(
        settings.num_packets,
        settings.num_pipelines,
        settings.num_stateful,
        settings.register_size,
        pattern=pattern,
        seed=seed,
    )


def run_d2(settings: Optional[MicrobenchSettings] = None) -> List[D2Result]:
    """Dynamic vs static sharding (paper: 1.1-3.3x on skewed, 1-1.5x on
    uniform access)."""
    settings = settings or MicrobenchSettings()
    program = make_sensitivity_program(
        settings.num_stateful, settings.register_size
    )
    results = []
    for pattern in ("skewed", "uniform"):
        ratios = []
        for seed in settings.seeds:
            trace = _trace(settings, pattern, seed)
            dynamic, _ = run_mp5(
                program,
                clone_packets(trace),
                MP5Config(num_pipelines=settings.num_pipelines),
                max_ticks=settings.max_ticks,
            )
            static, _ = run_mp5(
                program,
                clone_packets(trace),
                static_shard_config(
                    num_pipelines=settings.num_pipelines, seed=seed
                ),
                max_ticks=settings.max_ticks,
            )
            denominator = static.throughput_normalized() or 1e-9
            ratios.append(dynamic.throughput_normalized() / denominator)
        results.append(D2Result(pattern=pattern, ratios=ratios))
    return results


def run_d4(settings: Optional[MicrobenchSettings] = None) -> D4Result:
    """C1 violations with D4, without D4, and with re-circulation."""
    settings = settings or MicrobenchSettings()
    program = make_sensitivity_program(
        settings.num_stateful, settings.register_size
    )
    with_d4, without_d4, recirc = [], [], []
    with_d4_disp, without_d4_disp, recirc_disp = [], [], []
    for seed in settings.seeds:
        trace = _trace(settings, "skewed", seed)
        reference = BanzaiPipeline(program).run(
            reference_trace(trace, settings.num_pipelines),
            record_access_order=True,
        )
        n = len(trace)

        stats, _ = run_mp5(
            program,
            clone_packets(trace),
            MP5Config(num_pipelines=settings.num_pipelines),
            max_ticks=settings.max_ticks,
            record_access_order=True,
        )
        report = c1_metrics(reference.access_order, stats.access_order, n)
        with_d4.append(report.inversion_fraction)
        with_d4_disp.append(report.displaced_fraction)

        stats, _ = run_mp5(
            program,
            clone_packets(trace),
            no_phantom_config(num_pipelines=settings.num_pipelines),
            max_ticks=settings.max_ticks,
            record_access_order=True,
        )
        report = c1_metrics(reference.access_order, stats.access_order, n)
        without_d4.append(report.inversion_fraction)
        without_d4_disp.append(report.displaced_fraction)

        stats, _switch = run_recirculation(
            program,
            clone_packets(trace),
            RecircConfig(num_pipelines=settings.num_pipelines, seed=seed),
            max_ticks=settings.max_ticks,
            record_access_order=True,
        )
        report = c1_metrics(reference.access_order, stats.access_order, n)
        recirc.append(report.inversion_fraction)
        recirc_disp.append(report.displaced_fraction)
    return D4Result(
        with_d4=with_d4,
        without_d4=without_d4,
        recirculation=recirc,
        with_d4_displaced=with_d4_disp,
        without_d4_displaced=without_d4_disp,
        recirculation_displaced=recirc_disp,
    )


def run_d3(settings: Optional[MicrobenchSettings] = None) -> D3Result:
    """Steering vs re-circulation vs the naive single-pipeline design."""
    settings = settings or MicrobenchSettings()
    program = make_sensitivity_program(
        settings.num_stateful, settings.register_size
    )
    mp5_scores, recirc_scores, naive_scores, recirc_counts = [], [], [], []
    for seed in settings.seeds:
        trace = _trace(settings, "skewed", seed)
        stats, _ = run_mp5(
            program,
            clone_packets(trace),
            MP5Config(num_pipelines=settings.num_pipelines),
            max_ticks=settings.max_ticks,
        )
        mp5_scores.append(stats.throughput_normalized())

        stats, switch = run_recirculation(
            program,
            clone_packets(trace),
            RecircConfig(num_pipelines=settings.num_pipelines, seed=seed),
            max_ticks=settings.max_ticks,
        )
        recirc_scores.append(stats.throughput_normalized())
        recirc_counts.append(switch.avg_recirculations)

        stats, _ = run_single_pipeline_state(
            program,
            clone_packets(trace),
            MP5Config(num_pipelines=settings.num_pipelines),
            max_ticks=settings.max_ticks,
        )
        naive_scores.append(stats.throughput_normalized())
    return D3Result(
        mp5=mp5_scores,
        recirculation=recirc_scores,
        single_pipeline_state=naive_scores,
        avg_recirculations=recirc_counts,
    )


def render_microbench(
    d2: List[D2Result], d4: D4Result, d3: D3Result
) -> str:
    """Render the three microbenchmark tables as text."""
    sections = []
    rows = [(r.pattern, r.min_ratio, r.max_ratio) for r in d2]
    sections.append(
        format_table(
            ["pattern", "min dyn/static", "max dyn/static"],
            rows,
            title="D2: dynamic vs static sharding throughput ratio",
        )
    )
    rows = [
        (
            "C1 inversion fraction",
            float(np.mean(d4.with_d4)),
            float(np.mean(d4.without_d4)),
            float(np.mean(d4.recirculation)),
        )
    ]
    if d4.with_d4_displaced is not None:
        rows.append(
            (
                "C1 displaced packets",
                float(np.mean(d4.with_d4_displaced)),
                float(np.mean(d4.without_d4_displaced)),
                float(np.mean(d4.recirculation_displaced)),
            )
        )
    sections.append(
        format_table(
            ["metric", "MP5 (D4)", "no D4", "recirculation"],
            rows,
            title="D4: preemptive order enforcement",
        )
    )
    rows = [
        (
            "throughput",
            float(np.mean(d3.mp5)),
            float(np.mean(d3.recirculation)),
            float(np.mean(d3.single_pipeline_state)),
        ),
        ("avg recirculations/pkt", "-", float(np.mean(d3.avg_recirculations)), "-"),
    ]
    sections.append(
        format_table(
            ["metric", "MP5", "recirculation", "single-pipe state"],
            rows,
            title="D3: inter-pipeline steering vs re-circulation",
        )
    )
    return "\n\n".join(sections)
