"""Statistical distributions used by the evaluation workloads (§4.3, §4.4).

* **Web-search flow sizes** — the heavy-tailed flow-size CDF measured in
  production search clusters (DCTCP [2] / pFabric [4]); the paper uses it
  for "flow size and traffic distribution, which also governs the state
  access pattern".
* **Bimodal packet sizes** — datacenter packets cluster around 200 B and
  1400 B (Benson et al. [6]); the paper samples packet sizes from this
  bimodal shape for the real-application experiments.
* **Skewed state access** — "most packets (95%) access only a small
  fraction of states (30%)", derived from heavy-tailed datacenter
  traffic; plus the uniform pattern as the contrast case.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError

# (flow size in bytes, cumulative probability) — the web-search workload
# CDF as published with pFabric and reused across the datacenter
# transport literature.
WEB_SEARCH_CDF: List[Tuple[int, float]] = [
    (6 * 1024, 0.0),
    (10 * 1024, 0.15),
    (20 * 1024, 0.20),
    (30 * 1024, 0.30),
    (50 * 1024, 0.40),
    (80 * 1024, 0.53),
    (200 * 1024, 0.60),
    (1 * 1024 * 1024, 0.70),
    (2 * 1024 * 1024, 0.80),
    (5 * 1024 * 1024, 0.90),
    (10 * 1024 * 1024, 0.97),
    (30 * 1024 * 1024, 1.00),
]


class EmpiricalCDF:
    """Inverse-transform sampling from a piecewise-linear CDF."""

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ConfigError("CDF needs at least two points")
        self.values = [float(v) for v, _p in points]
        self.probs = [float(p) for _v, p in points]
        if self.probs[0] != 0.0 or self.probs[-1] != 1.0:
            raise ConfigError("CDF must start at probability 0 and end at 1")
        if any(b < a for a, b in zip(self.probs, self.probs[1:])):
            raise ConfigError("CDF probabilities must be non-decreasing")
        if any(b < a for a, b in zip(self.values, self.values[1:])):
            raise ConfigError("CDF values must be non-decreasing")

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value by inverse-transform sampling."""
        u = float(rng.random())
        i = bisect_left(self.probs, u)
        if i == 0:
            return self.values[0]
        if i >= len(self.probs):
            return self.values[-1]
        p0, p1 = self.probs[i - 1], self.probs[i]
        v0, v1 = self.values[i - 1], self.values[i]
        if p1 == p0:
            return v1
        frac = (u - p0) / (p1 - p0)
        return v0 + frac * (v1 - v0)

    def mean(self, samples: int = 20000, seed: int = 0) -> float:
        rng = np.random.default_rng(seed)
        return float(np.mean([self.sample(rng) for _ in range(samples)]))


def web_search_flow_sizes() -> EmpiricalCDF:
    """The web-search flow-size distribution (bytes)."""
    return EmpiricalCDF(WEB_SEARCH_CDF)


@dataclass
class BimodalPacketSizes:
    """Datacenter packet sizes clustered around two modes (§4.4)."""

    small: int = 200
    large: int = 1400
    small_fraction: float = 0.55

    def __post_init__(self):
        if not 0.0 <= self.small_fraction <= 1.0:
            raise ConfigError("small_fraction must be in [0, 1]")
        if self.small < 64 or self.large < self.small:
            raise ConfigError("need 64 <= small <= large")

    def sample(self, rng: np.random.Generator) -> int:
        if rng.random() < self.small_fraction:
            return self.small
        return self.large

    @property
    def mean_bytes(self) -> float:
        return self.small_fraction * self.small + (1 - self.small_fraction) * self.large


@dataclass
class UniformAccess:
    """Each state index is (approximately) equally likely."""

    size: int

    def __post_init__(self):
        if self.size < 1:
            raise ConfigError("size must be >= 1")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.size))


@dataclass
class SkewedAccess:
    """Hot-set access skew: ``hot_weight`` of packets touch the
    ``hot_fraction`` of indexes (defaults: 95% of packets -> 30% of
    states, the paper's skewed pattern)."""

    size: int
    hot_fraction: float = 0.30
    hot_weight: float = 0.95

    def __post_init__(self):
        if self.size < 1:
            raise ConfigError("size must be >= 1")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ConfigError("hot_weight must be in [0, 1]")
        self.hot_count = max(1, int(round(self.size * self.hot_fraction)))

    def sample(self, rng: np.random.Generator) -> int:
        if rng.random() < self.hot_weight:
            return int(rng.integers(0, self.hot_count))
        if self.hot_count >= self.size:
            return int(rng.integers(0, self.size))
        return int(rng.integers(self.hot_count, self.size))


def zipf_access(size: int, alpha: float, rng: np.random.Generator, count: int) -> np.ndarray:
    """Zipf-distributed index samples (an alternative skew model used in
    the extended ablations)."""
    if size < 1:
        raise ConfigError("size must be >= 1")
    ranks = np.arange(1, size + 1, dtype=float)
    weights = ranks ** (-alpha)
    weights /= weights.sum()
    return rng.choice(size, size=count, p=weights)
